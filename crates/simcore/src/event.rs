//! Cancellable event queue with deterministic ordering.
//!
//! Events popped from the queue are ordered by `(time, sequence)`, where the
//! sequence number is assigned at scheduling time. Two events scheduled for
//! the same instant therefore fire in scheduling order, which makes whole
//! simulations reproducible bit-for-bit.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Handle to a scheduled event, usable for cancellation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventId(u64);

#[derive(PartialEq, Eq)]
struct Slot<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E: Eq> Ord for Slot<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl<E: Eq> PartialOrd for Slot<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic, cancellable discrete-event queue.
///
/// `E` is the event payload type chosen by the embedding simulator.
/// Cancellation is lazy: cancelled events stay in the heap and are skipped
/// on pop, which keeps both operations `O(log n)` amortized.
///
/// Cancellation state lives in `pending`, which tracks exactly the
/// events still in the heap (`seq → cancelled?`). Cancelling an
/// already-fired (or never-heaped) event is rejected up front instead of
/// inserting a tombstone that nothing would ever prune — long-running
/// simulations cancel stale timer events constantly, and an
/// insert-always set would grow without bound.
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Slot<E>>>,
    /// One entry per heap slot: `true` once cancelled.
    pending: HashMap<u64, bool>,
    next_seq: u64,
    scheduled: u64,
    fired: u64,
}

impl<E: Eq> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E: Eq> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            pending: HashMap::new(),
            next_seq: 0,
            scheduled: 0,
            fired: 0,
        }
    }

    /// Schedule `payload` to fire at absolute time `at`.
    ///
    /// Events scheduled for [`SimTime::FAR_FUTURE`] are silently dropped:
    /// they model "never happens" completions.
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        if at != SimTime::FAR_FUTURE {
            self.heap.push(Reverse(Slot {
                time: at,
                seq,
                payload,
            }));
            self.pending.insert(seq, false);
            self.scheduled += 1;
        }
        EventId(seq)
    }

    /// Cancel a previously scheduled event. Cancelling an already-fired,
    /// already-cancelled or unknown event is a no-op (and returns
    /// `false`) — in particular it cannot grow the queue's state.
    pub fn cancel(&mut self, id: EventId) -> bool {
        match self.pending.get_mut(&id.0) {
            Some(cancelled @ false) => {
                *cancelled = true;
                true
            }
            _ => false,
        }
    }

    /// Remove and return the earliest live event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(Reverse(slot)) = self.heap.pop() {
            let cancelled = self.pending.remove(&slot.seq).unwrap_or(false);
            if cancelled {
                continue;
            }
            self.fired += 1;
            return Some((slot.time, slot.payload));
        }
        None
    }

    /// Time of the earliest live event without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        loop {
            match self.heap.peek() {
                None => return None,
                Some(Reverse(slot)) if self.pending.get(&slot.seq) == Some(&true) => {
                    let Reverse(slot) = self.heap.pop().expect("peeked");
                    self.pending.remove(&slot.seq);
                }
                Some(Reverse(slot)) => return Some(slot.time),
            }
        }
    }

    /// Cancelled-but-not-yet-pruned entries still occupying the heap
    /// (diagnostics; bounded by [`EventQueue::len`] by construction).
    pub fn tombstones(&self) -> usize {
        self.pending.values().filter(|&&c| c).count()
    }

    /// Number of events currently pending (including not-yet-skipped
    /// cancelled entries; an upper bound used for progress diagnostics).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events scheduled over the queue's lifetime.
    pub fn total_scheduled(&self) -> u64 {
        self.scheduled
    }

    /// Total events fired over the queue's lifetime.
    pub fn total_fired(&self) -> u64 {
        self.fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(5), "c");
        q.schedule(t(1), "a");
        q.schedule(t(3), "b");
        assert_eq!(q.pop(), Some((t(1), "a")));
        assert_eq!(q.pop(), Some((t(3), "b")));
        assert_eq!(q.pop(), Some((t(5), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_tie_break_at_same_instant() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn cancellation_skips_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        q.schedule(t(2), "b");
        assert!(q.cancel(a));
        assert_eq!(q.pop(), Some((t(2), "b")));
    }

    #[test]
    fn cancel_then_peek_is_consistent() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        q.schedule(t(4), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(4)));
        assert_eq!(q.pop(), Some((t(4), "b")));
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn far_future_events_never_fire() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::FAR_FUTURE, "never");
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(t(10), 1u32);
        assert_eq!(q.pop(), Some((t(10), 1)));
        q.schedule(t(10) + SimDuration::from_nanos(1), 2);
        q.schedule(t(10), 3); // same nominal second but earlier nanos
        assert_eq!(q.pop(), Some((t(10), 3)));
        assert_eq!(q.pop(), Some((t(10) + SimDuration::from_nanos(1), 2)));
    }

    #[test]
    fn counters_track_lifecycle() {
        let mut q = EventQueue::new();
        q.schedule(t(1), ());
        q.schedule(t(2), ());
        q.pop();
        assert_eq!(q.total_scheduled(), 2);
        assert_eq!(q.total_fired(), 1);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn cancelling_fired_events_cannot_leak_tombstones() {
        // Regression: cancel() of an already-fired event used to insert
        // into the cancelled set forever. A long-running simulation that
        // reschedules timers (cancelling the stale event after it fired)
        // would grow that set without bound.
        let mut q = EventQueue::new();
        let mut fired_ids = Vec::new();
        for round in 0..1000u64 {
            let id = q.schedule(t(round), round);
            assert_eq!(q.pop(), Some((t(round), round)));
            fired_ids.push(id);
        }
        for id in fired_ids {
            assert!(!q.cancel(id), "cancel of a fired event must be a no-op");
        }
        assert_eq!(q.tombstones(), 0);
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn tombstones_are_bounded_by_pending_and_pruned_on_pop() {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..100u64).map(|i| q.schedule(t(i), i)).collect();
        for id in &ids[..50] {
            assert!(q.cancel(*id), "first cancel of a pending event");
            assert!(!q.cancel(*id), "second cancel is a no-op");
        }
        assert_eq!(q.tombstones(), 50);
        assert!(q.tombstones() <= q.len());
        let mut live = 0;
        while q.pop().is_some() {
            live += 1;
        }
        assert_eq!(live, 50);
        assert_eq!(q.tombstones(), 0);
    }

    #[test]
    fn far_future_events_leave_no_state_and_cancel_false() {
        let mut q = EventQueue::new();
        let id = q.schedule(SimTime::FAR_FUTURE, 1u32);
        assert_eq!(q.len(), 0);
        assert!(!q.cancel(id), "never-heaped event has nothing to cancel");
        assert_eq!(q.tombstones(), 0);
    }
}
