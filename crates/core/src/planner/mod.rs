//! Cluster-level migration planning: the pluggable layer between
//! scenario intent and the engine.
//!
//! The paper's central claim is that the *right* storage-transfer scheme
//! depends on the workload's I/O intensity (§4, §5.2). At cluster scale
//! a second decision dominates end-to-end cost: *when* and *how many*
//! migrations run concurrently (Baruchi et al., Voorsluys et al.). This
//! module makes both decisions first-class:
//!
//! * A [`Planner`] receives migration requests — explicit jobs as well
//!   as high-level intents like "evacuate node N" or "rebalance group G"
//!   ([`RequestIntent`]) — together with live per-VM I/O telemetry
//!   (windowed write/read rates sampled from the workload hooks) and
//!   per-node load, and decides **destination placement** and, for
//!   adaptive requests, **which of the transfer schemes to use**.
//! * The engine's orchestration layer (`engine::orchestrator`) drains a
//!   request queue through the planner under a configurable
//!   max-concurrent-migrations **admission cap**
//!   ([`OrchestratorConfig::max_concurrent`]): ready requests past the
//!   cap are held (visible as planner-queued jobs) and admitted in
//!   deterministic FIFO order as slots free up.
//!
//! Three planners ship: [`FixedPlanner`] — the trivial planner that
//! reproduces the engine's historical explicit scheduling — the
//! load-aware [`AdaptivePlanner`], which places onto the least-loaded
//! healthy node and operationalizes the paper's §4 decision rule by
//! picking the transfer scheme from observed write intensity, and the
//! predictive [`CostPlanner`], which estimates per-scheme migration
//! time and bytes-on-wire from an analytic model over the same
//! telemetry (the paper's §5.2 dirty-rate × threshold analysis) and
//! admits the argmin — recording the per-scheme estimates on the
//! [`PlannerDecision`] so reports show *why* a scheme won.
//!
//! Everything here is deterministic: no randomness, ties broken by the
//! lowest index, so two runs of the same scenario produce bit-identical
//! reports (the property `lsm/tests/determinism.rs` pins).

mod adaptive;
pub mod bounds;
mod cost;
mod fixed;

pub use adaptive::AdaptivePlanner;
pub use cost::CostPlanner;
pub use fixed::FixedPlanner;

use crate::policy::StrategyKind;
use lsm_simcore::time::SimTime;
use serde::{Deserialize, Serialize};

/// A high-level migration intent submitted to the orchestrator.
///
/// Unlike an explicit migration (one VM, one destination), an intent
/// names an *outcome*; the planner expands it into concrete per-VM
/// migrations — choosing destinations and, under the adaptive planner,
/// strategies — when the request becomes ready.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum RequestIntent {
    /// Migrate every live VM off `node` (decommission / maintenance).
    /// VMs are evacuated in ascending index order; each placement is
    /// decided when the VM is admitted, so later placements see the
    /// load the earlier ones created.
    Evacuate {
        /// The node to drain.
        node: u32,
    },
    /// Even out the placement of workload group `group`: members whose
    /// host carries a load exceeding the best alternative by more than
    /// one VM are migrated to the planner's placement choice.
    Rebalance {
        /// The workload-group index (deployment order).
        group: u32,
    },
}

impl RequestIntent {
    /// Short human-readable label for logs and CLI output.
    pub fn label(&self) -> &'static str {
        match self {
            RequestIntent::Evacuate { .. } => "evacuate",
            RequestIntent::Rebalance { .. } => "rebalance",
        }
    }
}

/// Which planner the orchestrator uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PlannerKind {
    /// [`FixedPlanner`]: explicit requests as given, first-healthy-node
    /// placement for intents, never overrides strategies.
    Fixed,
    /// [`AdaptivePlanner`]: least-loaded placement, write-intensity
    /// strategy selection for adaptive requests.
    Adaptive,
    /// [`CostPlanner`]: least-loaded placement; adaptive requests get
    /// the scheme whose predicted migration cost (time + weighted
    /// traffic, from the analytic model) is lowest.
    Cost,
}

impl PlannerKind {
    /// Lowercase name (the serialized form).
    pub fn label(self) -> &'static str {
        match self {
            PlannerKind::Fixed => "fixed",
            PlannerKind::Adaptive => "adaptive",
            PlannerKind::Cost => "cost",
        }
    }

    /// Whether this planner reads per-VM I/O telemetry (and therefore
    /// needs the sampling loop armed and accepts adaptive requests).
    pub fn uses_telemetry(self) -> bool {
        !matches!(self, PlannerKind::Fixed)
    }
}

impl serde::Serialize for PlannerKind {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.label().to_string())
    }
}

impl serde::Deserialize for PlannerKind {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        match v {
            serde::Value::Str(s) if s.eq_ignore_ascii_case("fixed") => Ok(PlannerKind::Fixed),
            serde::Value::Str(s) if s.eq_ignore_ascii_case("adaptive") => Ok(PlannerKind::Adaptive),
            serde::Value::Str(s) if s.eq_ignore_ascii_case("cost") => Ok(PlannerKind::Cost),
            serde::Value::Str(s) => Err(serde::Error::new(format!(
                "unknown planner `{s}` (expected `fixed`, `adaptive` or `cost`)"
            ))),
            other => Err(serde::Error::new(format!(
                "expected planner name string, found {}",
                other.kind()
            ))),
        }
    }
}

/// Orchestrator tuning: the admission cap, the placement/strategy
/// planner, and the telemetry window the adaptive decision reads.
///
/// Deserialization fills absent fields from
/// [`OrchestratorConfig::default`], so a scenario's `[orchestrator]`
/// section only spells out the knobs it changes (like `[cluster]`).
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct OrchestratorConfig {
    /// Maximum concurrently running migrations (`None` — the default —
    /// admits everything immediately, reproducing the engine's
    /// historical behaviour). Ready requests beyond the cap are held in
    /// FIFO order and admitted as running jobs reach a terminal status.
    pub max_concurrent: Option<u32>,
    /// Which planner decides placement and (for adaptive requests)
    /// strategy.
    pub planner: PlannerKind,
    /// Width of the per-VM I/O telemetry sampling window, seconds. The
    /// windowed write/read rates the adaptive rule reads cover the last
    /// full window before the decision instant.
    pub telemetry_window_secs: f64,
    /// Adaptive rule: windowed write rate at or above this fraction of
    /// the NIC bandwidth selects `Hybrid` (the paper's scheme — built
    /// for I/O-intensive writers).
    pub adaptive_write_hi_frac: f64,
    /// Adaptive rule: write rates in `[lo, hi)` of the NIC select
    /// `Mirror` (synchronous mirroring is cheap for light writers).
    pub adaptive_write_lo_frac: f64,
    /// Adaptive rule: with negligible writes, a windowed read rate at or
    /// above this fraction of the NIC selects `Postcopy` (pull-on-read);
    /// below it the VM is idle and gets `Precopy` (the block stream
    /// converges immediately).
    pub adaptive_read_hi_frac: f64,
    /// Cost model: seconds of score added per GiB of predicted
    /// bytes-on-wire (the time/traffic exchange rate — 0 optimizes time
    /// alone).
    pub cost_bytes_weight: f64,
    /// Cost model: pull-phase slowdown multiplier per unit of read
    /// intensity (fraction of NIC): on-demand reads block on pulls, so
    /// a read-hot guest stretches the Hybrid/Postcopy pull phase by
    /// `1 + penalty × read_frac`.
    pub cost_ondemand_penalty: f64,
    /// Cost model: predicted time charged to a pre-copy-style scheme
    /// (Precopy, Mirror) whose re-dirty/write flux is at or above the
    /// NIC share — the non-convergent case the paper criticizes.
    pub cost_nonconverge_penalty_secs: f64,
    /// Cost model: seconds of score added per predicted SLA-violation
    /// second (guest degradation the scheme is expected to impose — see
    /// [`SchemeEstimate::est_sla_secs`]). 0 — the default — reproduces
    /// the historical time+bytes objective exactly.
    pub cost_sla_weight: f64,
    /// How many times an intent-expanded migration step whose placement
    /// found no healthy destination is retried (on later queue drains —
    /// slot releases, new requests, node restores) before the step is
    /// abandoned with a terminal [`SkipReason::PlacementExhausted`]
    /// record.
    pub placement_retry_limit: u32,
}

impl Default for OrchestratorConfig {
    fn default() -> Self {
        OrchestratorConfig {
            max_concurrent: None,
            planner: PlannerKind::Fixed,
            telemetry_window_secs: 5.0,
            adaptive_write_hi_frac: 0.05,
            adaptive_write_lo_frac: 0.005,
            adaptive_read_hi_frac: 0.05,
            cost_bytes_weight: 1.0,
            cost_ondemand_penalty: 4.0,
            cost_nonconverge_penalty_secs: 1.0e6,
            cost_sla_weight: 0.0,
            placement_retry_limit: 4,
        }
    }
}

/// The single authoritative field list for the hand-written
/// `Deserialize` impl (same pattern as `ClusterConfig`): the strict
/// unknown-key check and the per-field constructor are both generated
/// from it, so they cannot drift apart.
macro_rules! orchestrator_config_fields {
    ($action:ident) => {
        $action!(
            max_concurrent,
            planner,
            telemetry_window_secs,
            adaptive_write_hi_frac,
            adaptive_write_lo_frac,
            adaptive_read_hi_frac,
            cost_bytes_weight,
            cost_ondemand_penalty,
            cost_nonconverge_penalty_secs,
            cost_sla_weight,
            placement_retry_limit
        )
    };
}

impl serde::Deserialize for OrchestratorConfig {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        if !matches!(v, serde::Value::Map(_)) {
            return Err(serde::Error::new(format!(
                "expected map for OrchestratorConfig, found {}",
                v.kind()
            )));
        }
        macro_rules! names {
            ($($f:ident),*) => { &[$(stringify!($f)),*] };
        }
        const KNOWN: &[&str] = orchestrator_config_fields!(names);
        if let serde::Value::Map(entries) = v {
            for (k, _) in entries {
                if !KNOWN.contains(&k.as_str()) {
                    return Err(serde::Error::new(format!(
                        "unknown OrchestratorConfig field `{k}` (expected one of: {})",
                        KNOWN.join(", ")
                    )));
                }
            }
        }
        let d = OrchestratorConfig::default();
        macro_rules! build {
            ($($f:ident),*) => {
                OrchestratorConfig {
                    $($f: match v.get(stringify!($f)) {
                        Some(x) => serde::Deserialize::from_value(x)
                            .map_err(|e| e.ctx(concat!("OrchestratorConfig.", stringify!($f))))?,
                        None => d.$f,
                    }),*
                }
            };
        }
        Ok(orchestrator_config_fields!(build))
    }
}

impl OrchestratorConfig {
    /// Check every field for usability (the orchestration analogue of
    /// [`crate::config::ClusterConfig::validate`]).
    pub fn validate(&self) -> Result<(), crate::error::EngineError> {
        let fail = |reason: String| Err(crate::error::EngineError::InvalidRequest { reason });
        if self.max_concurrent == Some(0) {
            return fail("max_concurrent of 0 would never admit a migration".to_string());
        }
        if !(self.telemetry_window_secs.is_finite() && self.telemetry_window_secs > 0.0) {
            return fail(format!(
                "telemetry_window_secs must be positive and finite, got {}",
                self.telemetry_window_secs
            ));
        }
        for (name, x) in [
            ("adaptive_write_hi_frac", self.adaptive_write_hi_frac),
            ("adaptive_write_lo_frac", self.adaptive_write_lo_frac),
            ("adaptive_read_hi_frac", self.adaptive_read_hi_frac),
        ] {
            if !(x.is_finite() && x > 0.0) {
                return fail(format!("{name} must be positive and finite, got {x}"));
            }
        }
        if self.adaptive_write_lo_frac > self.adaptive_write_hi_frac {
            return fail(format!(
                "adaptive_write_lo_frac {} exceeds adaptive_write_hi_frac {}",
                self.adaptive_write_lo_frac, self.adaptive_write_hi_frac
            ));
        }
        for (name, x) in [
            ("cost_bytes_weight", self.cost_bytes_weight),
            ("cost_ondemand_penalty", self.cost_ondemand_penalty),
            ("cost_sla_weight", self.cost_sla_weight),
        ] {
            if !(x.is_finite() && x >= 0.0) {
                return fail(format!("{name} must be non-negative and finite, got {x}"));
            }
        }
        if !(self.cost_nonconverge_penalty_secs.is_finite()
            && self.cost_nonconverge_penalty_secs > 0.0)
        {
            return fail(format!(
                "cost_nonconverge_penalty_secs must be positive and finite, got {}",
                self.cost_nonconverge_penalty_secs
            ));
        }
        if self.placement_retry_limit == 0 {
            return fail("placement_retry_limit of 0 would never attempt a placement".to_string());
        }
        Ok(())
    }

    /// Build the configured planner.
    pub fn build_planner(&self) -> Box<dyn Planner> {
        match self.planner {
            PlannerKind::Fixed => Box::new(FixedPlanner),
            PlannerKind::Adaptive => Box::new(AdaptivePlanner),
            PlannerKind::Cost => Box::new(CostPlanner::default()),
        }
    }
}

/// Per-node load view handed to planners.
#[derive(Clone, Copy, Debug)]
pub struct NodeView {
    /// The node index.
    pub node: u32,
    /// True once a crash fault took the node down.
    pub crashed: bool,
    /// Live VMs resident on the node plus admitted inbound migrations
    /// still heading there.
    pub load: u32,
    /// Summed windowed I/O busy fraction of the node's attributed VMs
    /// (each VM contributes its I/O-in-flight time over the telemetry
    /// window, so one saturated VM contributes ~1.0). The autonomic
    /// rebalancer's overload/underload signal.
    pub io_pressure: f64,
    /// Cumulative page-cache hit ratio over the node's attributed VMs'
    /// guest reads (1.0 when no reads were issued yet).
    pub cache_hit: f64,
}

/// The VM a planner is deciding about.
///
/// The windowed rates cover the last full telemetry window before the
/// decision instant; when no telemetry tick has sampled the VM yet
/// (admission earlier than the first window boundary), the orchestrator
/// samples the cumulative counters on demand, so a freshly admitted hot
/// writer is never misread as idle.
#[derive(Clone, Copy, Debug)]
pub struct VmView {
    /// The VM index.
    pub vm: u32,
    /// Its current host node.
    pub host: u32,
    /// Its configured storage transfer strategy.
    pub strategy: StrategyKind,
    /// Windowed write rate, bytes/second.
    pub write_rate: f64,
    /// Windowed read rate, bytes/second.
    pub read_rate: f64,
    /// Windowed dirty-set growth, bytes/second: the rate at which the
    /// guest touches *previously clean* chunks (ModifiedSet growth × the
    /// chunk size).
    pub dirty_rate: f64,
    /// Windowed re-write (overwrite) rate, bytes/second: manager-level
    /// writes landing on already-modified chunks — the paper's real
    /// threshold signal. High `rewrite_rate` with low `dirty_rate` is a
    /// hot working set that pre-copy streams re-send forever and the
    /// hybrid scheme withholds.
    pub rewrite_rate: f64,
    /// Windowed I/O busy fraction (I/O-in-flight time over the window,
    /// reads + writes): ~0.0 idle, ~1.0 saturating its disk path.
    pub io_pressure: f64,
    /// Cumulative page-cache hit ratio of the VM's guest reads (1.0
    /// when no reads were issued yet).
    pub cache_hit: f64,
    /// Bytes with any local presence (modified or cached base) — what a
    /// `Precopy`/`Mirror` bulk phase must copy.
    pub local_bytes: u64,
    /// Bytes of locally *written* chunks (the ModifiedSet) — what
    /// `Hybrid`/`Postcopy` must move; cached base content is re-fetched
    /// from the repository by the destination instead.
    pub modified_bytes: u64,
}

/// Everything a planner may consult for one decision. Views only — a
/// planner cannot mutate the engine, which keeps decisions replayable.
#[derive(Debug)]
pub struct PlanContext<'a> {
    /// Current simulated time.
    pub now: SimTime,
    /// Per-NIC bandwidth, bytes/second (the adaptive thresholds are
    /// fractions of it).
    pub nic_bw: f64,
    /// True when the cluster migrates memory with post-copy: pre-copy
    /// style storage strategies (`Precopy`, `Mirror`) cannot run there,
    /// and an adaptive rule must not select them.
    pub postcopy_memory: bool,
    /// The cluster's push `Threshold` (a chunk written this many times
    /// is withheld from the hybrid active push) — the cost model's
    /// bound on re-push traffic.
    pub threshold: u32,
    /// The orchestrator configuration (thresholds).
    pub cfg: &'a OrchestratorConfig,
    /// Per-node load, indexed by node.
    pub nodes: &'a [NodeView],
    /// The VM being placed / strategized.
    pub vm: VmView,
}

/// A pluggable migration planner: placement for intent-driven
/// migrations and strategy resolution for adaptive requests.
///
/// Implementations must be deterministic (no clocks, no RNG; break ties
/// on the lowest index) — planner decisions are part of the engine's
/// bit-identical replay contract.
pub trait Planner: std::fmt::Debug + Send {
    /// The planner's name, recorded on every [`PlannerDecision`].
    fn name(&self) -> &'static str;

    /// Choose a destination for `ctx.vm` (evacuation/rebalance
    /// placement). Must return a healthy node different from the VM's
    /// host, or `None` when no such node exists.
    fn place(&mut self, ctx: &PlanContext<'_>) -> Option<u32>;

    /// Resolve the transfer strategy for an adaptive request on
    /// `ctx.vm`.
    fn choose_strategy(&mut self, ctx: &PlanContext<'_>) -> StrategyKind;

    /// Per-scheme estimates behind the most recent
    /// [`Planner::choose_strategy`] call, moved out for the decision
    /// record (empty for planners that do not predict).
    fn take_estimates(&mut self) -> Vec<SchemeEstimate> {
        Vec::new()
    }
}

/// One candidate scheme's predicted migration cost, as computed by the
/// [`CostPlanner`] at admission time and recorded on the
/// [`PlannerDecision`] (so `lsm run --json` shows *why* a scheme won).
#[derive(Clone, Copy, Debug, Serialize)]
pub struct SchemeEstimate {
    /// The candidate scheme.
    pub strategy: StrategyKind,
    /// Predicted storage migration time, seconds.
    pub est_time_secs: f64,
    /// Predicted storage bytes-on-wire.
    pub est_bytes: u64,
    /// Predicted SLA-violation seconds: the guest-degradation fraction
    /// the scheme imposes (read-stall exposure for the pull styles,
    /// wire contention for the pre-copy styles), integrated over the
    /// predicted time. Weighted into the score by
    /// [`OrchestratorConfig::cost_sla_weight`].
    pub est_sla_secs: f64,
    /// The scalar score the argmin ran on: `est_time_secs +
    /// cost_bytes_weight × est_bytes / GiB + cost_sla_weight ×
    /// est_sla_secs`.
    pub score: f64,
}

/// One planner decision, recorded in scheduling order and serialized
/// into [`crate::engine::RunReport`] (`lsm run --json` exposes it).
#[derive(Clone, Debug, Serialize)]
pub struct PlannerDecision {
    /// The orchestrator request this decision realizes (`None` for an
    /// explicitly scheduled migration).
    pub request: Option<u32>,
    /// The migration job the decision admitted.
    pub job: u32,
    /// The migrating VM.
    pub vm: u32,
    /// Source node at the decision instant.
    pub source: u32,
    /// Chosen destination node.
    pub dest: u32,
    /// Chosen transfer strategy.
    pub strategy: StrategyKind,
    /// When the decision was made (the admission instant).
    pub decided_at: SimTime,
    /// True when admission was deferred past the request's ready time
    /// by the concurrency cap.
    pub deferred: bool,
    /// Name of the deciding planner.
    pub planner: &'static str,
    /// Per-scheme cost estimates behind the strategy choice (empty
    /// unless the cost planner resolved the strategy).
    pub estimates: Vec<SchemeEstimate>,
}

/// Why an intent-expanded migration step was skipped instead of
/// admitted. Skips are recorded in
/// [`crate::engine::RunReport::planner_skips`] so an intent that moved
/// fewer VMs than expected is auditable, not silent.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize)]
pub enum SkipReason {
    /// The VM died (its host crashed) while the step was queued.
    VmCrashed,
    /// An explicit migration job raced the intent and already owns the
    /// VM.
    AlreadyMigrating,
    /// Evacuation only: the VM already left the drained node before the
    /// step was admitted.
    AlreadyOffNode,
    /// Rebalance only: moving the VM would no longer improve the load
    /// spread (host ≤ target + 1 after the move).
    SpreadSatisfied,
    /// No healthy destination existed at this attempt; the step is
    /// parked and retried on the next queue drain (slot release, new
    /// request, node restore).
    NoDestination,
    /// Every retry found no healthy destination; the step is abandoned
    /// ([`OrchestratorConfig::placement_retry_limit`] bounds the
    /// attempts).
    PlacementExhausted,
}

/// One skipped intent step (see [`SkipReason`]), recorded in admission
/// order alongside [`PlannerDecision`]s.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct PlannerSkip {
    /// The orchestrator request whose step was skipped.
    pub request: u32,
    /// The VM the step would have migrated.
    pub vm: u32,
    /// When the skip was decided.
    pub at: SimTime,
    /// Why the step was skipped.
    pub reason: SkipReason,
    /// True when the step will not be retried (the intent is resolved
    /// for this VM — by the skip itself or by retry exhaustion).
    pub terminal: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(cfg: &'a OrchestratorConfig, nodes: &'a [NodeView], vm: VmView) -> PlanContext<'a> {
        PlanContext {
            now: SimTime::ZERO,
            nic_bw: 100.0e6,
            postcopy_memory: false,
            threshold: 3,
            cfg,
            nodes,
            vm,
        }
    }

    fn nodes(loads: &[(bool, u32)]) -> Vec<NodeView> {
        loads
            .iter()
            .enumerate()
            .map(|(i, &(crashed, load))| NodeView {
                node: i as u32,
                crashed,
                load,
                io_pressure: load as f64 * 0.1,
                cache_hit: 1.0,
            })
            .collect()
    }

    fn vm_on(host: u32, write_rate: f64, read_rate: f64) -> VmView {
        VmView {
            vm: 0,
            host,
            strategy: StrategyKind::Hybrid,
            write_rate,
            read_rate,
            dirty_rate: 0.0,
            rewrite_rate: write_rate,
            io_pressure: 0.0,
            cache_hit: 1.0,
            local_bytes: 64 << 20,
            modified_bytes: 64 << 20,
        }
    }

    #[test]
    fn fixed_planner_places_first_healthy_other_node() {
        let cfg = OrchestratorConfig::default();
        let nv = nodes(&[(false, 3), (true, 0), (false, 9), (false, 0)]);
        let mut p = FixedPlanner;
        assert_eq!(p.place(&ctx(&cfg, &nv, vm_on(0, 0.0, 0.0))), Some(2));
        assert_eq!(p.place(&ctx(&cfg, &nv, vm_on(2, 0.0, 0.0))), Some(0));
        // Only crashed alternatives: no placement.
        let nv = nodes(&[(false, 0), (true, 0)]);
        assert_eq!(p.place(&ctx(&cfg, &nv, vm_on(0, 0.0, 0.0))), None);
    }

    #[test]
    fn adaptive_planner_places_least_loaded() {
        let cfg = OrchestratorConfig::default();
        let nv = nodes(&[(false, 1), (false, 4), (true, 0), (false, 1)]);
        let mut p = AdaptivePlanner;
        // Tie between 0 and 3 at load 1, but 0 is the host: pick 3.
        assert_eq!(p.place(&ctx(&cfg, &nv, vm_on(0, 0.0, 0.0))), Some(3));
        // From node 1, the tie breaks to the lowest index.
        assert_eq!(p.place(&ctx(&cfg, &nv, vm_on(1, 0.0, 0.0))), Some(0));
    }

    #[test]
    fn adaptive_rule_covers_the_intensity_spectrum() {
        let cfg = OrchestratorConfig::default();
        let nv = nodes(&[(false, 0), (false, 0)]);
        let mut p = AdaptivePlanner;
        let nic = 100.0e6;
        // Write-heavy: the paper's hybrid scheme.
        let c = ctx(&cfg, &nv, vm_on(0, 0.10 * nic, 0.0));
        assert_eq!(p.choose_strategy(&c), StrategyKind::Hybrid);
        // Light writer: synchronous mirroring.
        let c = ctx(&cfg, &nv, vm_on(0, 0.01 * nic, 0.0));
        assert_eq!(p.choose_strategy(&c), StrategyKind::Mirror);
        // Read-mostly: storage post-copy.
        let c = ctx(&cfg, &nv, vm_on(0, 0.0, 0.2 * nic));
        assert_eq!(p.choose_strategy(&c), StrategyKind::Postcopy);
        // Idle: incremental block pre-copy converges immediately.
        let c = ctx(&cfg, &nv, vm_on(0, 0.0, 0.0));
        assert_eq!(p.choose_strategy(&c), StrategyKind::Precopy);
    }

    #[test]
    fn adaptive_rule_respects_postcopy_memory() {
        let cfg = OrchestratorConfig::default();
        let nv = nodes(&[(false, 0), (false, 0)]);
        let mut p = AdaptivePlanner;
        for (w, r) in [(0.0, 0.0), (0.01, 0.0), (0.10, 0.0), (0.0, 0.2)] {
            let mut c = ctx(&cfg, &nv, vm_on(0, w * 100.0e6, r * 100.0e6));
            c.postcopy_memory = true;
            let s = p.choose_strategy(&c);
            assert!(
                matches!(s, StrategyKind::Hybrid | StrategyKind::Postcopy),
                "post-copy memory admits no pre-copy storage stream, got {s:?}"
            );
        }
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        let ok = OrchestratorConfig::default();
        assert!(ok.validate().is_ok());
        let bad = OrchestratorConfig {
            max_concurrent: Some(0),
            ..ok.clone()
        };
        assert!(bad.validate().is_err());
        let bad = OrchestratorConfig {
            telemetry_window_secs: 0.0,
            ..ok.clone()
        };
        assert!(bad.validate().is_err());
        let bad = OrchestratorConfig {
            adaptive_write_lo_frac: 0.5,
            adaptive_write_hi_frac: 0.1,
            ..ok
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn orchestrator_config_partial_deserialization() {
        let v = serde::Value::Map(vec![
            ("max_concurrent".to_string(), serde::Value::U64(4)),
            (
                "planner".to_string(),
                serde::Value::Str("Adaptive".to_string()),
            ),
        ]);
        let cfg = <OrchestratorConfig as serde::Deserialize>::from_value(&v).expect("partial");
        assert_eq!(cfg.max_concurrent, Some(4));
        assert_eq!(cfg.planner, PlannerKind::Adaptive);
        assert_eq!(
            cfg.telemetry_window_secs,
            OrchestratorConfig::default().telemetry_window_secs
        );
        let bad = serde::Value::Map(vec![("max_conc".to_string(), serde::Value::U64(4))]);
        let err = <OrchestratorConfig as serde::Deserialize>::from_value(&bad).unwrap_err();
        assert!(err.to_string().contains("unknown OrchestratorConfig field"));
    }
}
