//! Scenario partitioning for the sharded parallel engine.
//!
//! [`partition`] proves a [`ScenarioSpec`] decomposes into independent
//! node components — connected components of the migration graph whose
//! traffic provably never leaves the component — and emits one
//! sub-scenario per component, each a complete, self-contained spec
//! over the component's nodes re-indexed densely in ascending global
//! order. [`run_scenario_threaded_with_solver`] builds one engine per
//! component and hands them to [`lsm_core::parallel::run_sharded`];
//! anything the partitioner cannot prove independent falls back to the
//! monolithic engine, whose behaviour is the definition of correct.
//!
//! The admission rules are deliberately conservative. A scenario
//! shards only when:
//!
//! * no orchestrated intents, autonomic rebalancer, resilience layer,
//!   fault plan, or cancellation plan — those subsystems take
//!   fleet-global decisions (placement scans, global tick ordering)
//!   that a node partition cannot reproduce;
//! * no grouped workloads (barrier traffic crosses components), no
//!   adaptive-strategy migrations (planner telemetry), and no
//!   `SharedFs` strategy (PVFS stripes over every node);
//! * every workload passes
//!   [`WorkloadSpec::chunk_aligned_write_only`] — write-only and
//!   chunk-aligned I/O never triggers on-demand repository fetches
//!   from nodes outside the component;
//! * the fabric is switch-decoupled (switch aggregate ≥ 2× the summed
//!   NIC capacity), so flows in different components can never contend
//!   — the same condition under which the monolithic incremental
//!   solver already re-solves components independently.
//!
//! Under those rules each shard's event stream is *identical* to the
//! monolithic engine's restriction to that component, and the merged
//! report (see `lsm_core::parallel`) is byte-identical to the
//! monolithic one — `lsm`'s determinism suite pins this at `--threads
//! 1/2/8` under both solver modes.

use crate::scenario::{build_scenario, run_scenario_with_solver, ScenarioSpec};
use lsm_core::config::ClusterConfig;
use lsm_core::error::EngineError;
use lsm_core::parallel::{run_sharded, run_sharded_observed, FleetShape, ParallelOpts, Shard};
use lsm_core::policy::StrategyKind;
use lsm_core::{Observer, RunReport};
use lsm_netsim::SolverMode;
use lsm_simcore::time::SimTime;

/// One component of a partitioned scenario: a self-contained spec over
/// the component's nodes plus the maps back to global identity.
#[derive(Clone, Debug)]
pub struct SubScenario {
    /// The component's scenario (nodes/VMs/migrations re-indexed).
    pub spec: ScenarioSpec,
    /// Local VM index → global VM index.
    pub vms: Vec<u32>,
    /// Local migration index → global migration index.
    pub jobs: Vec<u32>,
    /// Local node index → global node index.
    pub nodes: Vec<u32>,
}

/// One reason a scenario cannot be sharded. [`partition`] collects
/// *every* failed admission rule (not just the first), so `lsm run
/// --threads N`'s fallback note and `lsm lint`'s shard-admission
/// explainer can show everything that would have to change for the
/// scenario to shard.
#[derive(Clone, Debug, PartialEq)]
pub enum ShardRejection {
    /// An `[orchestrator]` section takes fleet-global admission
    /// decisions.
    Orchestrator,
    /// The `[autonomic]` rebalancer scans the whole fleet every tick.
    Autonomic,
    /// The `[resilience]` layer re-plans against fleet-global state.
    Resilience,
    /// Orchestration requests expand against fleet-global placement.
    Requests,
    /// Fault plans are not yet component-attributed.
    Faults,
    /// Cancellations record fleet-global resilience history.
    Cancellations,
    /// Grouped workloads exchange barrier traffic between components.
    Grouped,
    /// An adaptive-strategy migration reads planner telemetry.
    AdaptiveMigration {
        /// Index into `ScenarioSpec::migrations`.
        migration: u32,
    },
    /// A VM under the SharedFs strategy stripes writes over every node.
    SharedFs {
        /// Index into `ScenarioSpec::vms`.
        vm: u32,
    },
    /// A workload reads, or writes partial chunks — either could fetch
    /// across components.
    UnalignedWorkload {
        /// Index into `ScenarioSpec::vms`.
        vm: u32,
        /// The workload's class label.
        label: &'static str,
    },
    /// The switch aggregate couples components.
    SwitchCoupled {
        /// Configured switch aggregate, bytes/s.
        switch_bw: f64,
        /// The decoupling threshold `2 × Σ nic_bw`, bytes/s.
        required: f64,
    },
    /// A VM names a node outside the cluster.
    VmNodeOutOfRange {
        /// Index into `ScenarioSpec::vms`.
        vm: u32,
        /// The out-of-range node.
        node: u32,
    },
    /// A migration names a VM or node outside the cluster.
    MigrationOutOfRange {
        /// Index into `ScenarioSpec::migrations`.
        migration: u32,
    },
    /// The migration graph is one connected component — nothing to
    /// split.
    SingleComponent,
}

impl std::fmt::Display for ShardRejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardRejection::Orchestrator => {
                write!(
                    f,
                    "an [orchestrator] section takes fleet-global admission decisions"
                )
            }
            ShardRejection::Autonomic => {
                write!(
                    f,
                    "the [autonomic] rebalancer scans the whole fleet every tick"
                )
            }
            ShardRejection::Resilience => {
                write!(
                    f,
                    "the [resilience] layer re-plans against fleet-global state"
                )
            }
            ShardRejection::Requests => {
                write!(
                    f,
                    "orchestration requests expand against fleet-global placement"
                )
            }
            ShardRejection::Faults => write!(f, "fault plans are not yet component-attributed"),
            ShardRejection::Cancellations => {
                write!(f, "cancellations record fleet-global resilience history")
            }
            ShardRejection::Grouped => {
                write!(
                    f,
                    "grouped workloads exchange barrier traffic between components"
                )
            }
            ShardRejection::AdaptiveMigration { migration } => write!(
                f,
                "migration {migration} is adaptive-strategy (reads planner telemetry)"
            ),
            ShardRejection::SharedFs { vm } => write!(
                f,
                "vm {vm} uses the SharedFs strategy (stripes every write over the whole PVFS)"
            ),
            ShardRejection::UnalignedWorkload { vm, label } => write!(
                f,
                "not chunk-aligned write-only: workload class '{label}' on vm {vm} \
                 (could fetch across components)"
            ),
            ShardRejection::SwitchCoupled {
                switch_bw,
                required,
            } => write!(
                f,
                "switch-coupled: switch_bw {:.0} MB/s < 2 × Σ nic_bw = {:.0} MB/s",
                switch_bw / 1.0e6,
                required / 1.0e6
            ),
            ShardRejection::VmNodeOutOfRange { vm, node } => {
                write!(f, "vm {vm} names node {node} outside the cluster")
            }
            ShardRejection::MigrationOutOfRange { migration } => {
                write!(
                    f,
                    "migration {migration} names a VM or node outside the cluster"
                )
            }
            ShardRejection::SingleComponent => {
                write!(f, "the migration graph is one connected component")
            }
        }
    }
}

/// Render a rejection list as one semicolon-joined line (the compact
/// form the CLI fallback note and error contexts use).
pub fn render_rejections(reasons: &[ShardRejection]) -> String {
    reasons
        .iter()
        .map(|r| r.to_string())
        .collect::<Vec<_>>()
        .join("; ")
}

/// Prove `spec` partitions into ≥ 2 independent components and build
/// the per-component sub-scenarios, or report **every** admission rule
/// it fails.
pub fn partition(spec: &ScenarioSpec) -> Result<Vec<SubScenario>, Vec<ShardRejection>> {
    let mut rejections = Vec::new();
    if spec.orchestrator.is_some() {
        rejections.push(ShardRejection::Orchestrator);
    }
    if spec.autonomic.is_some() {
        rejections.push(ShardRejection::Autonomic);
    }
    if spec.resilience.is_some() {
        rejections.push(ShardRejection::Resilience);
    }
    if !spec.request_plan().is_empty() {
        rejections.push(ShardRejection::Requests);
    }
    if !spec.fault_plan().is_empty() {
        rejections.push(ShardRejection::Faults);
    }
    if !spec.cancellation_plan().is_empty() {
        rejections.push(ShardRejection::Cancellations);
    }
    if spec.grouped {
        rejections.push(ShardRejection::Grouped);
    }
    for (i, m) in spec.migrations.iter().enumerate() {
        if m.adaptive == Some(true) {
            rejections.push(ShardRejection::AdaptiveMigration {
                migration: i as u32,
            });
        }
    }
    let cluster = spec.cluster_config();
    let nodes = cluster.nodes as usize;
    for i in 0..spec.vms.len() {
        if spec.vm_strategy(i) == StrategyKind::SharedFs {
            rejections.push(ShardRejection::SharedFs { vm: i as u32 });
        }
    }
    for (i, v) in spec.vms.iter().enumerate() {
        if !v.workload.chunk_aligned_write_only(cluster.chunk_size) {
            rejections.push(ShardRejection::UnalignedWorkload {
                vm: i as u32,
                label: v.workload.label(),
            });
        }
    }
    // Uniform NICs: the switch aggregate must dominate twice the summed
    // NIC capacity for components to be provably contention-free (the
    // monolithic solver's own decoupling condition).
    let required = 2.0 * nodes as f64 * cluster.nic_bw;
    if cluster.switch_bw < required {
        rejections.push(ShardRejection::SwitchCoupled {
            switch_bw: cluster.switch_bw,
            required,
        });
    }
    let mut indices_ok = true;
    for (i, v) in spec.vms.iter().enumerate() {
        if v.node as usize >= nodes {
            rejections.push(ShardRejection::VmNodeOutOfRange {
                vm: i as u32,
                node: v.node,
            });
            indices_ok = false;
        }
    }
    for (i, m) in spec.migrations.iter().enumerate() {
        if m.vm as usize >= spec.vms.len() || m.dest as usize >= nodes {
            rejections.push(ShardRejection::MigrationOutOfRange {
                migration: i as u32,
            });
            indices_ok = false;
        }
    }
    // Out-of-range indices would make the union-find below index out of
    // bounds; the rejection list is complete enough without the
    // component count.
    if !indices_ok {
        return Err(rejections);
    }

    // Union-find over nodes; each migration joins its VM's host with
    // its destination.
    let mut parent: Vec<u32> = (0..nodes as u32).collect();
    fn find(parent: &mut [u32], x: u32) -> u32 {
        let mut r = x;
        while parent[r as usize] != r {
            r = parent[r as usize];
        }
        let mut c = x;
        while parent[c as usize] != r {
            let next = parent[c as usize];
            parent[c as usize] = r;
            c = next;
        }
        r
    }
    for m in &spec.migrations {
        let a = find(&mut parent, spec.vms[m.vm as usize].node);
        let b = find(&mut parent, m.dest);
        if a != b {
            parent[a.max(b) as usize] = a.min(b);
        }
    }
    // Group nodes by component root, ascending — which both keeps each
    // shard's node order a subsequence of the global order (preserving
    // the waterfill's lowest-index tie-breaks) and makes the shard list
    // itself deterministic.
    let mut comp_of_node = vec![u32::MAX; nodes];
    let mut comps: Vec<Vec<u32>> = Vec::new();
    for n in 0..nodes as u32 {
        let root = find(&mut parent, n);
        if comp_of_node[root as usize] == u32::MAX {
            comp_of_node[root as usize] = comps.len() as u32;
            comps.push(Vec::new());
        }
        let c = comp_of_node[root as usize];
        comp_of_node[n as usize] = c;
        comps[c as usize].push(n);
    }
    // Components with no VMs host no events at all; drop them.
    let mut live: Vec<Vec<u32>> = Vec::new();
    {
        let mut has_vm = vec![false; comps.len()];
        for v in &spec.vms {
            has_vm[comp_of_node[v.node as usize] as usize] = true;
        }
        for (ci, c) in comps.into_iter().enumerate() {
            if has_vm[ci] {
                live.push(c);
            }
        }
    }
    if live.len() < 2 {
        rejections.push(ShardRejection::SingleComponent);
    }
    if !rejections.is_empty() {
        return Err(rejections);
    }

    let mut subs = Vec::with_capacity(live.len());
    for members in live {
        let mut local_node = vec![u32::MAX; nodes];
        for (li, &g) in members.iter().enumerate() {
            local_node[g as usize] = li as u32;
        }
        let mut vms = Vec::new();
        let mut vm_specs = Vec::new();
        let mut local_vm = vec![u32::MAX; spec.vms.len()];
        for (gi, v) in spec.vms.iter().enumerate() {
            if local_node[v.node as usize] != u32::MAX {
                local_vm[gi] = vms.len() as u32;
                vms.push(gi as u32);
                let mut v = v.clone();
                v.node = local_node[v.node as usize];
                vm_specs.push(v);
            }
        }
        let mut jobs = Vec::new();
        let mut mig_specs = Vec::new();
        for (gi, m) in spec.migrations.iter().enumerate() {
            if local_vm[m.vm as usize] != u32::MAX {
                jobs.push(gi as u32);
                let mut m = m.clone();
                m.vm = local_vm[m.vm as usize];
                m.dest = local_node[m.dest as usize];
                mig_specs.push(m);
            }
        }
        let sub_cluster = ClusterConfig {
            nodes: members.len() as u32,
            ..cluster.clone()
        };
        subs.push(SubScenario {
            spec: ScenarioSpec {
                name: spec.name.clone(),
                cluster: Some(sub_cluster),
                orchestrator: None,
                autonomic: None,
                resilience: None,
                qos: spec.qos.clone(),
                strategy: spec.strategy,
                grouped: false,
                vms: vm_specs,
                migrations: mig_specs,
                requests: None,
                faults: None,
                cancellations: None,
                horizon_secs: spec.horizon_secs,
            },
            vms,
            jobs,
            nodes: members,
        });
    }
    Ok(subs)
}

/// Build the per-component shard engines under `solver`.
fn build_shards(subs: Vec<SubScenario>, solver: SolverMode) -> Result<Vec<Shard>, EngineError> {
    let mut shards = Vec::with_capacity(subs.len());
    for sub in subs {
        let mut sim = build_scenario(&sub.spec)?;
        sim.engine_mut().set_solver_mode(solver);
        shards.push(Shard {
            engine: sim.into_engine(),
            vms: sub.vms,
            jobs: sub.jobs,
            nodes: sub.nodes,
        });
    }
    Ok(shards)
}

fn shape_of(spec: &ScenarioSpec) -> FleetShape {
    FleetShape {
        vms: spec.vms.len() as u32,
        jobs: spec.migrations.len() as u32,
        switch_capacity: spec.cluster_config().switch_bw,
    }
}

fn horizon_of(spec: &ScenarioSpec) -> Result<SimTime, EngineError> {
    if !(spec.horizon_secs.is_finite() && spec.horizon_secs >= 0.0) {
        return Err(EngineError::InvalidTime {
            what: "horizon".to_string(),
            value: spec.horizon_secs,
        });
    }
    Ok(SimTime::from_secs_f64(spec.horizon_secs))
}

/// Run a scenario on `threads` worker threads under an explicit solver.
/// `threads ≤ 1` — or any scenario the partitioner rejects — runs the
/// monolithic engine; the two paths produce byte-identical reports.
pub fn run_scenario_threaded_with_solver(
    spec: &ScenarioSpec,
    threads: usize,
    solver: SolverMode,
) -> Result<RunReport, EngineError> {
    if threads <= 1 {
        return run_scenario_with_solver(spec, solver);
    }
    let subs = match partition(spec) {
        Ok(subs) => subs,
        Err(_) => return run_scenario_with_solver(spec, solver),
    };
    let shards = build_shards(subs, solver)?;
    let shape = shape_of(spec);
    let horizon = horizon_of(spec)?;
    Ok(run_sharded(
        shards,
        shape,
        horizon,
        ParallelOpts {
            threads,
            ..ParallelOpts::default()
        },
    ))
}

/// Run a scenario on `threads` worker threads under the default solver.
pub fn run_scenario_threaded(
    spec: &ScenarioSpec,
    threads: usize,
) -> Result<RunReport, EngineError> {
    run_scenario_threaded_with_solver(spec, threads, SolverMode::default())
}

/// Outcome of a sharded observed run: the merged report plus each
/// finished `(shard, observer)` pair, so callers can finalize per-shard
/// audits (e.g. `lsm run --check` runs one invariant checker per shard
/// and finishes each against its shard engine).
pub struct ShardedRun<O> {
    /// The merged fleet-wide report.
    pub report: RunReport,
    /// Finished shards with their observers, in shard order.
    pub shards: Vec<(Shard, O)>,
}

/// Run a partitionable scenario sharded with one observer per shard,
/// built by `make_obs` (called once per shard, in shard order).
/// Returns `Err` with the partitioner's full rejection list if the
/// scenario is not shardable — the caller decides how to fall back.
pub fn run_scenario_sharded_observed<O, F>(
    spec: &ScenarioSpec,
    threads: usize,
    solver: SolverMode,
    mut make_obs: F,
) -> Result<Result<ShardedRun<O>, Vec<ShardRejection>>, EngineError>
where
    O: Observer + Send,
    F: FnMut() -> O,
{
    let subs = match partition(spec) {
        Ok(subs) => subs,
        Err(why) => return Ok(Err(why)),
    };
    let shards = build_shards(subs, solver)?;
    let observers: Vec<O> = shards.iter().map(|_| make_obs()).collect();
    let shape = shape_of(spec);
    let horizon = horizon_of(spec)?;
    let (report, shards) = run_sharded_observed(
        shards,
        observers,
        shape,
        horizon,
        ParallelOpts {
            threads: threads.max(1),
            ..ParallelOpts::default()
        },
    );
    Ok(Ok(ShardedRun { report, shards }))
}
