//! Iterative pre-copy memory migration (QEMU-style), as a pure state
//! machine driven by the engine.
//!
//! Protocol:
//!
//! 1. [`PrecopyMemory::start`] returns the first-pass byte count
//!    (`touched_bytes`). The engine transfers it as a network flow.
//! 2. When the flow completes, the engine calls
//!    [`PrecopyMemory::round_done`] with the bytes the guest dirtied during
//!    the round and the rate the round achieved. The machine answers:
//!    another [`NextStep::Round`], or [`NextStep::StopAndCopy`] when the
//!    remainder fits the downtime target (or the round cap fired).
//! 3. The engine pauses the VM, transfers the final bytes, calls
//!    [`PrecopyMemory::finish`], and resumes the VM at the destination.
//!    The *storage* migration manager learns about this moment through the
//!    hypervisor's `sync`, exactly as in §4.4.

use crate::memory::{MemMigrationConfig, MemoryProfile};

/// What the engine must do after a completed round.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NextStep {
    /// Transfer another iterative round of `bytes` while the VM runs.
    Round {
        /// Dirty bytes to re-send.
        bytes: u64,
    },
    /// Pause the VM and transfer the final `bytes`, then hand control to
    /// the destination. `throttled` is true when the round cap forced
    /// convergence (the guest was auto-converge throttled for this round).
    StopAndCopy {
        /// Remaining dirty bytes flushed during downtime.
        bytes: u64,
        /// Whether forced convergence (guest throttling) was applied.
        throttled: bool,
    },
}

/// Phase of the migration, for introspection.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Phase {
    Idle,
    Iterating,
    StopAndCopy,
    Done,
}

/// The pre-copy state machine. See module docs for the driving protocol.
#[derive(Clone, Debug)]
pub struct PrecopyMemory {
    profile: MemoryProfile,
    cfg: MemMigrationConfig,
    phase: Phase,
    round: u32,
    total_sent: u64,
}

impl PrecopyMemory {
    /// Prepare a migration of a guest with the given memory profile.
    pub fn new(profile: MemoryProfile, cfg: MemMigrationConfig) -> Self {
        PrecopyMemory {
            profile,
            cfg,
            phase: Phase::Idle,
            round: 0,
            total_sent: 0,
        }
    }

    /// Begin: returns the first-pass size in bytes.
    pub fn start(&mut self) -> u64 {
        assert_eq!(self.phase, Phase::Idle, "migration already started");
        self.phase = Phase::Iterating;
        self.round = 1;
        self.total_sent = self.profile.touched_bytes;
        self.profile.touched_bytes
    }

    /// A round's flow completed. `dirtied_bytes` is what the guest dirtied
    /// while it ran (measured by the engine); `achieved_rate` is the
    /// round's observed transfer rate in bytes/second.
    pub fn round_done(&mut self, dirtied_bytes: u64, achieved_rate: f64) -> NextStep {
        assert_eq!(self.phase, Phase::Iterating, "round_done out of phase");
        // Re-dirtied pages are bounded by the writable working set.
        let remaining = dirtied_bytes.min(self.profile.wss_bytes);
        let downtime_budget_bytes =
            (achieved_rate * self.cfg.downtime_target.as_secs_f64()).max(0.0) as u64;
        if remaining <= downtime_budget_bytes {
            self.phase = Phase::StopAndCopy;
            self.total_sent += remaining;
            return NextStep::StopAndCopy {
                bytes: remaining,
                throttled: false,
            };
        }
        if self.round >= self.cfg.max_rounds {
            self.phase = Phase::StopAndCopy;
            self.total_sent += remaining;
            return NextStep::StopAndCopy {
                bytes: remaining,
                throttled: true,
            };
        }
        self.round += 1;
        self.total_sent += remaining;
        NextStep::Round { bytes: remaining }
    }

    /// The stop-and-copy flow completed; control moves to the destination.
    pub fn finish(&mut self) {
        assert_eq!(self.phase, Phase::StopAndCopy, "finish out of phase");
        self.phase = Phase::Done;
    }

    /// True once control has been handed over.
    pub fn is_done(&self) -> bool {
        self.phase == Phase::Done
    }

    /// Iterative rounds performed so far (first pass counts as round 1).
    pub fn rounds(&self) -> u32 {
        self.round
    }

    /// Total memory bytes queued for transfer so far.
    pub fn total_sent(&self) -> u64 {
        self.total_sent
    }

    /// The memory profile being migrated.
    pub fn profile(&self) -> &MemoryProfile {
        &self.profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsm_simcore::time::SimDuration;
    use lsm_simcore::units::{mb_per_s, GIB, MIB};

    fn profile(touched_mb: u64, wss_mb: u64) -> MemoryProfile {
        MemoryProfile::new(4 * GIB, touched_mb * MIB, wss_mb * MIB, 0.0)
    }

    fn cfg(max_rounds: u32) -> MemMigrationConfig {
        MemMigrationConfig {
            downtime_target: SimDuration::from_millis(30),
            max_rounds,
            speed_cap: None,
        }
    }

    #[test]
    fn idle_guest_converges_after_first_pass() {
        let mut m = PrecopyMemory::new(profile(1024, 256), cfg(30));
        assert_eq!(m.start(), 1024 * MIB);
        // Guest dirtied nothing: immediate stop-and-copy of 0 bytes.
        let step = m.round_done(0, mb_per_s(100.0));
        assert_eq!(
            step,
            NextStep::StopAndCopy {
                bytes: 0,
                throttled: false
            }
        );
        m.finish();
        assert!(m.is_done());
        assert_eq!(m.total_sent(), 1024 * MIB);
    }

    #[test]
    fn moderate_dirtying_takes_a_few_rounds() {
        let mut m = PrecopyMemory::new(profile(1024, 256), cfg(30));
        m.start();
        // Round 1 took 10s at 100MB/s; guest dirtied 100 MiB.
        let mut step = m.round_done(100 * MIB, mb_per_s(100.0));
        let mut rounds = 1;
        while let NextStep::Round { bytes } = step {
            rounds += 1;
            assert!(rounds < 20, "did not converge");
            // Each round is shorter; dirtying shrinks proportionally.
            let dirtied = bytes / 10;
            step = m.round_done(dirtied, mb_per_s(100.0));
        }
        match step {
            NextStep::StopAndCopy { throttled, .. } => assert!(!throttled),
            _ => unreachable!(),
        }
    }

    #[test]
    fn hot_guest_hits_round_cap_and_throttles() {
        let mut m = PrecopyMemory::new(profile(1024, 512), cfg(5));
        m.start();
        let mut step = m.round_done(512 * MIB, mb_per_s(100.0));
        loop {
            match step {
                NextStep::Round { .. } => {
                    // Guest keeps dirtying the whole WSS every round.
                    step = m.round_done(512 * MIB, mb_per_s(100.0));
                }
                NextStep::StopAndCopy { bytes, throttled } => {
                    assert!(throttled, "round cap must force convergence");
                    assert_eq!(bytes, 512 * MIB);
                    break;
                }
            }
        }
        assert_eq!(m.rounds(), 5, "stop-and-copy fired at the round cap");
    }

    #[test]
    fn wss_bounds_redirtied_bytes() {
        let mut m = PrecopyMemory::new(profile(1024, 64), cfg(30));
        m.start();
        // Engine reports a huge dirtied count; the WSS caps it.
        match m.round_done(10 * GIB, mb_per_s(100.0)) {
            NextStep::Round { bytes } => assert_eq!(bytes, 64 * MIB),
            NextStep::StopAndCopy { .. } => panic!("should need another round"),
        }
    }

    #[test]
    fn small_remainder_fits_downtime_budget() {
        let mut m = PrecopyMemory::new(profile(1024, 256), cfg(30));
        m.start();
        // 3 MB dirtied, 100 MB/s rate, 30 ms budget = 3 MB: converges.
        let dirtied = (mb_per_s(100.0) * 0.03) as u64 - 1;
        match m.round_done(dirtied, mb_per_s(100.0)) {
            NextStep::StopAndCopy { bytes, throttled } => {
                assert_eq!(bytes, dirtied);
                assert!(!throttled);
            }
            NextStep::Round { .. } => panic!("should converge"),
        }
    }

    #[test]
    #[should_panic(expected = "already started")]
    fn double_start_panics() {
        let mut m = PrecopyMemory::new(profile(10, 5), cfg(3));
        m.start();
        m.start();
    }
}
