//! Parallel execution of independent simulation runs.
//!
//! The simulator itself is single-threaded for determinism; experiments
//! are embarrassingly parallel across runs, so the sweep runner fans runs
//! out over OS threads with `std::thread::scope`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Apply `f` to every item, in parallel, preserving order.
///
/// Spawns up to `available_parallelism` worker threads; falls back to
/// sequential execution on single-core machines with no loss of
/// determinism (each run is a pure function of its input).
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }

    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let inputs: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = inputs[i]
                    .lock()
                    .expect("input lock")
                    .take()
                    .expect("item taken once");
                let out = f(item);
                *slots[i].lock().expect("slot lock") = Some(out);
            });
        }
    });

    slots
        .into_iter()
        .map(|m| m.into_inner().expect("slot lock").expect("slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parallel_map((0..100).collect(), |i: i32| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(parallel_map(vec![7], |i: u64| i + 1), vec![8]);
    }
}
