//! A small CM1 cluster (2×2 ranks) with two successive live migrations —
//! the Figure 5 scenario at laptop scale, on the checked builder API.
//! Shows how one migrated rank drags the whole barrier-synchronized
//! application.
//!
//! ```text
//! cargo run --release --example cm1_cluster
//! ```

use lsm::core::builder::SimulationBuilder;
use lsm::core::config::ClusterConfig;
use lsm::core::policy::StrategyKind;
use lsm::core::NodeId;
use lsm::simcore::SimTime;
use lsm::workloads::WorkloadSpec;

fn run(migrations: u32) -> (f64, f64) {
    let mut b = SimulationBuilder::new(ClusterConfig {
        nodes: 8,
        ..ClusterConfig::small_test()
    })
    .expect("config is valid");
    let placements: Vec<(NodeId, WorkloadSpec)> = (0..4)
        .map(|r| (NodeId(r), WorkloadSpec::cm1_small(r, 4, 2, 4)))
        .collect();
    let ids = b
        .add_group(&placements, StrategyKind::Hybrid, SimTime::ZERO)
        .expect("group is valid");
    for i in 0..migrations {
        b.migrate(
            ids[i as usize],
            NodeId(4 + i),
            SimTime::from_secs_f64(10.0 * (i + 1) as f64),
        )
        .expect("migration is valid");
    }
    let mut sim = b.build().expect("simulation builds");
    let r = sim.run_until(SimTime::from_secs(900));
    for m in &r.migrations {
        assert!(m.completed && m.consistent == Some(true));
    }
    let runtime = r
        .vms
        .iter()
        .map(|v| v.finished_at.expect("rank finished").as_secs_f64())
        .fold(0.0, f64::max);
    (runtime, r.total_migration_time())
}

fn main() {
    let (base, _) = run(0);
    println!("CM1 2x2, hybrid storage migration");
    println!(
        "{:>12} {:>14} {:>22}",
        "#migrations", "app runtime", "cumulated migr. time"
    );
    println!("{:>12} {:>12.1} s {:>20} s", 0, base, "-");
    for n in 1..=2 {
        let (runtime, cumul) = run(n);
        println!("{:>12} {:>12.1} s {:>20.1} s", n, runtime, cumul);
    }
    println!("\nEvery migrated rank slows its whole barrier group — the");
    println!("paper's motivation for minimizing migration interference.");
}
