//! Engine half of the QoS layer: flow-cap selection, multifd shard
//! accounting, compression of wire bytes, and the SLA degradation
//! integrator. The pure configuration and report types live in
//! [`crate::qos`]; this module alone may touch engine state.
//!
//! Inertness contract: with no [`QosConfig`] installed every helper
//! here reproduces the historical behaviour exactly — memory flows
//! carry `Some(migration_speed_cap())`, storage batches carry `None`,
//! each copy is a single flow, and wire bytes equal raw bytes — so a
//! `[qos]`-less run is event-for-event identical to one built before
//! this module existed. The SLA integrator only writes report fields
//! and never schedules events, so it stays on unconditionally.

use super::types::*;
use super::Engine;
use crate::error::EngineError;
use crate::qos::QosConfig;
use lsm_hypervisor::VmState;
use lsm_netsim::TrafficTag;

/// QoS runtime state (one per [`Engine`], present only when a
/// `[qos]` section is installed).
pub(crate) struct QosRt {
    pub cfg: QosConfig,
}

impl Engine {
    /// Install a migration QoS configuration (bandwidth cap, multifd
    /// streams, compression). Must happen before any migration or
    /// request is scheduled, so every transfer in a run is shaped the
    /// same way.
    ///
    /// # Errors
    /// [`EngineError::InvalidRequest`] for an unusable configuration or
    /// when work is already queued.
    pub fn configure_qos(&mut self, cfg: QosConfig) -> Result<(), EngineError> {
        cfg.validate()?;
        if !self.jobs.is_empty() || !self.orch.intents.is_empty() {
            return Err(EngineError::InvalidRequest {
                reason: "configure QoS before scheduling migrations or requests".to_string(),
            });
        }
        self.qos = Some(QosRt { cfg });
        Ok(())
    }

    /// The installed QoS configuration, if any (invariant checkers and
    /// reports read the knobs through this).
    pub fn qos_config(&self) -> Option<&QosConfig> {
        self.qos.as_ref().map(|q| &q.cfg)
    }

    /// SLA audit pair for one VM's live migration: the recorded
    /// degradation loss fraction and the loss the current engine state
    /// implies. The two must agree at every event boundary — the
    /// `sla-consistent` law's contract. `None` when the VM has no
    /// migration state.
    pub fn sla_audit(&self, vm: u32) -> Option<(f64, f64)> {
        let v = self.vms.get(vm as usize)?;
        let m = v.migration.as_ref()?;
        Some((m.degrade_loss, degrade_loss(self, vm)))
    }

    // ------------- testing hooks (invariant detection) -------------

    /// Start a migration-class flow **without** the QoS cap it should
    /// carry. Exists so `lsm-check`'s cap-respected law can be
    /// detection-tested against a deliberately broken state; never call
    /// it from production code.
    #[doc(hidden)]
    pub fn testing_force_uncapped_flow(&mut self, src: u32, dst: u32, bytes: u64) {
        self.start_flow(
            src,
            dst,
            bytes,
            None,
            TrafficTag::Memory,
            FlowCtx::MemPostPull { vm: 0 },
        );
    }

    /// Overwrite a migration's recorded degradation loss **without** an
    /// integration step (sla-consistent law detection testing).
    #[doc(hidden)]
    pub fn testing_force_degrade_loss(&mut self, vm: u32, loss: f64) {
        if let Some(m) = self.vms[vm as usize].migration.as_mut() {
            m.degrade_loss = loss;
        }
    }
}

// ---------------- flow caps ----------------

/// The per-migration memory ceiling, bytes/second: the historical
/// `migration_speed_cap`, tightened by the QoS bandwidth cap when one
/// is configured.
pub(crate) fn mem_total_cap(eng: &Engine) -> f64 {
    let base = eng.cfg().migration_speed_cap();
    match eng.qos.as_ref().and_then(|q| q.cfg.cap_bytes()) {
        Some(c) => base.min(c),
        None => base,
    }
}

/// Cap for the post-copy background memory pull (always a single flow).
pub(crate) fn post_pull_cap(eng: &Engine) -> Option<f64> {
    Some(mem_total_cap(eng))
}

/// Cap for storage push/pull batch flows: historically `None` (they
/// take whatever max–min share the NIC gives), the QoS ceiling when
/// one is configured.
pub(crate) fn storage_flow_cap(eng: &Engine) -> Option<f64> {
    eng.qos.as_ref().and_then(|q| q.cfg.cap_bytes())
}

/// Scale on the guest-visible migration steal (`migration_cpu_steal`):
/// the flat steal models an unshaped migration saturating its full
/// max–min NIC share with cache pollution and I/O contention to match.
/// A QoS bandwidth cap bounds the transfer to `cap` of the NIC's
/// capacity, and the interference shrinks proportionally — the
/// slow-but-smooth half of the trade `lsm judge` scores. 1.0 when no
/// cap is configured (inert).
pub(crate) fn interference_scale(eng: &Engine) -> f64 {
    match eng.qos.as_ref().and_then(|q| q.cfg.cap_bytes()) {
        Some(cap) => (cap / eng.cfg().nic_bw).clamp(0.0, 1.0),
        None => 1.0,
    }
}

// ---------------- compression ----------------

fn compress(raw: u64, ratio: f64) -> u64 {
    if raw == 0 || ratio >= 1.0 {
        return raw;
    }
    (((raw as f64) * ratio).ceil() as u64).max(1)
}

/// Wire bytes for a memory copy of `raw` guest bytes.
pub(crate) fn wire_bytes_mem(eng: &Engine, raw: u64) -> u64 {
    match eng.qos.as_ref() {
        Some(q) => compress(raw, q.cfg.compress_mem_ratio),
        None => raw,
    }
}

/// Wire bytes for a storage batch of `raw` chunk bytes.
pub(crate) fn wire_bytes_storage(eng: &Engine, raw: u64) -> u64 {
    match eng.qos.as_ref() {
        Some(q) => compress(raw, q.cfg.compress_storage_ratio),
        None => raw,
    }
}

// ---------------- multifd memory copies ----------------

/// Start one memory copy (a pre-copy round or the stop-and-copy flush)
/// as `streams` concurrent flows with deterministic byte sharding:
/// `wire / n` per stream with the remainder on the first, zero-byte
/// shards skipped, and the memory ceiling split evenly across the
/// shards actually started so their aggregate never exceeds it. The
/// caller's completion handler must wait for the last shard via
/// [`mem_copy_shard_done`].
pub(crate) fn start_mem_copy(
    eng: &mut Engine,
    v: VmIdx,
    source: u32,
    dest: u32,
    raw: u64,
    stop: bool,
) {
    let wire = wire_bytes_mem(eng, raw);
    let n = eng.qos.as_ref().map(|q| q.cfg.streams).unwrap_or(1) as u64;
    let shards: Vec<u64> = if n <= 1 || wire == 0 {
        vec![wire]
    } else {
        let base = wire / n;
        let rem = wire % n;
        (0..n)
            .map(|i| if i == 0 { base + rem } else { base })
            .filter(|&b| b > 0)
            .collect()
    };
    let k = shards.len() as u32;
    let cap = Some(mem_total_cap(eng) / k as f64);
    eng.vm_mut(v)
        .migration
        .as_mut()
        .expect("migrating")
        .mem_streams_inflight = k;
    for bytes in shards {
        let ctx = if stop {
            FlowCtx::MemStop { vm: v }
        } else {
            FlowCtx::MemRound { vm: v }
        };
        eng.start_flow(source, dest, bytes, cap, TrafficTag::Memory, ctx);
    }
}

/// One shard of the current memory copy landed; returns true when it
/// was the last one (the round/flush is complete). The caller has
/// already checked the migration is live.
pub(crate) fn mem_copy_shard_done(eng: &mut Engine, v: VmIdx) -> bool {
    let mig = eng
        .vm_mut(v)
        .migration
        .as_mut()
        .expect("caller checked migration is live");
    mig.mem_streams_inflight = mig.mem_streams_inflight.saturating_sub(1);
    mig.mem_streams_inflight == 0
}

// ---------------- SLA degradation integrator ----------------

/// The guest throughput loss fraction a VM's live migration currently
/// implies, recomputed from scratch — the audit-path twin of the value
/// [`sla_transition`] records (which derives it from the caller's
/// already-computed factor instead). Used by `Engine::sla_audit` only.
pub(crate) fn degrade_loss(eng: &Engine, v: VmIdx) -> f64 {
    let vm = eng.vm(v);
    if vm.crashed || vm.vm.state() == VmState::Paused {
        return 0.0;
    }
    let Some(m) = vm.migration.as_ref() else {
        return 0.0;
    };
    if matches!(m.phase, MigPhase::Complete | MigPhase::Aborted) {
        return 0.0;
    }
    (1.0 - eng.compute_factor(v)).clamp(0.0, 1.0)
}

/// Advance the degradation integral to `now` at the previously recorded
/// loss, then record the loss the current state implies. Called from
/// `update_compute` — the single choke point every factor-changing
/// transition (pause, resume, throttle step, phase change) already
/// routes through — so the integral and the compute model cannot drift
/// apart. Report-only: never schedules an event.
///
/// `factor` is the freshly computed compute factor (the caller needs it
/// anyway), from which the loss fraction is derived: `1 − factor` (CPU
/// steal, post-copy fault slowdown, auto-converge throttle, compression
/// CPU) while the guest runs; 0 while paused (that time is downtime,
/// not degradation), crashed, or once the migration is terminal. VMs
/// with no migration record carry no integral and return immediately —
/// the unshaped fast path.
pub(crate) fn sla_transition(eng: &mut Engine, v: VmIdx, factor: f64) {
    let now = eng.now();
    let vm = eng.vm(v);
    let Some(m) = vm.migration.as_ref() else {
        return;
    };
    let loss = if vm.crashed
        || vm.vm.state() == VmState::Paused
        || matches!(m.phase, MigPhase::Complete | MigPhase::Aborted)
    {
        0.0
    } else {
        (1.0 - factor).clamp(0.0, 1.0)
    };
    let m = eng
        .vm_mut(v)
        .migration
        .as_mut()
        .expect("migration record checked above");
    let dt = now.since(m.degrade_mark).as_secs_f64();
    if dt > 0.0 && m.degrade_loss > 0.0 {
        m.degraded_secs += dt * m.degrade_loss;
    }
    m.degrade_mark = now;
    m.degrade_loss = loss;
}
