//! Regenerate the checked-in paper-scale bench scenario:
//!
//! ```text
//! cargo run --release -p lsm-experiments --example regen_scale64 > scenarios/scale64.toml
//! ```
//!
//! `scenarios/scale64.toml` must stay byte-identical to
//! [`lsm_experiments::stress::scale64_spec`] — a test asserts it, so
//! edit the generator, rerun this, and commit both.

fn main() {
    print!(
        "{}",
        lsm_experiments::stress::scale64_spec()
            .to_toml()
            .expect("scenario serializes")
    );
}
