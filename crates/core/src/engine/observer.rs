//! Run observers: milestone callbacks and cooperative abort.
//!
//! An [`Observer`] is handed to [`crate::engine::Engine::run_until_observed`]
//! (or [`crate::builder::Simulation::run_observed`]) and receives every
//! job status change and lifecycle milestone as it happens, together
//! with a queryable [`MigrationProgress`] snapshot. Returning
//! [`RunControl::Stop`] from any callback aborts the run at the current
//! simulated instant; the report then reflects the partial state —
//! callers can watch, log, or cancel instead of waiting for a post-hoc
//! `RunReport`.

use super::job::{JobId, MigrationProgress, MigrationStatus};
use super::report::Milestone;
use lsm_simcore::time::SimTime;

/// Whether the run should keep going after a callback.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RunControl {
    /// Keep simulating.
    Continue,
    /// Stop the event loop at the current simulated time.
    Stop,
}

/// Callbacks invoked by the engine while a run is in flight.
///
/// All methods default to no-ops that continue the run, so an observer
/// implements only what it cares about.
pub trait Observer {
    /// A job's lifecycle status changed. `progress` is the snapshot at
    /// the moment of the change.
    fn on_status(
        &mut self,
        job: JobId,
        status: MigrationStatus,
        now: SimTime,
        progress: &MigrationProgress,
    ) -> RunControl {
        let _ = (job, status, now, progress);
        RunControl::Continue
    }

    /// A migration hit a Figure-2 lifecycle milestone.
    fn on_milestone(&mut self, job: JobId, milestone: Milestone, now: SimTime) -> RunControl {
        let _ = (job, milestone, now);
        RunControl::Continue
    }

    /// Called after **every** dispatched engine event with read-only
    /// access to the full engine state (network flow views, job
    /// progress, per-VM chunk versions via
    /// [`crate::engine::Engine::inspect_vm`]). This is the audit hook
    /// invariant checkers (the `lsm-check` crate) hang off; the default
    /// no-op keeps ordinary observers free of per-event overhead beyond
    /// the virtual call.
    fn on_tick(&mut self, eng: &crate::engine::Engine) -> RunControl {
        let _ = eng;
        RunControl::Continue
    }
}

/// The do-nothing observer used by plain `run_until`.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullObserver;

impl Observer for NullObserver {}

/// An observer that records every callback (useful in tests and for
/// post-hoc inspection of a watched run).
#[derive(Debug, Default)]
pub struct RecordingObserver {
    /// `(time, job, status)` for every status change.
    pub statuses: Vec<(SimTime, JobId, MigrationStatus)>,
    /// `(time, job, milestone)` for every milestone.
    pub milestones: Vec<(SimTime, JobId, Milestone)>,
}

impl Observer for RecordingObserver {
    fn on_status(
        &mut self,
        job: JobId,
        status: MigrationStatus,
        now: SimTime,
        _progress: &MigrationProgress,
    ) -> RunControl {
        self.statuses.push((now, job, status));
        RunControl::Continue
    }

    fn on_milestone(&mut self, job: JobId, milestone: Milestone, now: SimTime) -> RunControl {
        self.milestones.push((now, job, milestone));
        RunControl::Continue
    }
}
