//! The VM I/O path for local-storage strategies.
//!
//! Guest I/O flows through the guest page cache first ([`PageCache`]);
//! the migration manager (and therefore every transfer policy) sees chunk
//! writes only when they are *flushed* — write-back completions, throttled
//! write-through, or fsync — exactly like the FUSE-level interposition of
//! §4.4, which sits below the guest's own caching.

use super::types::*;
use super::Engine;
use crate::policy::ReadPath;
use lsm_blockdev::{byte_range_to_chunks, ChunkId, ReadClass, WriteClass};
use lsm_hypervisor::VmState;
use lsm_netsim::{NodeId, TrafficTag};
use lsm_workloads::{ActionToken, IoKind};

/// Entry point for a driver `Io` action on a local-storage VM.
pub(crate) fn submit_io(
    eng: &mut Engine,
    v: VmIdx,
    token: ActionToken,
    kind: IoKind,
    offset: u64,
    len: u64,
) {
    let chunk_size = eng.cfg().chunk_size;
    let image = eng.cfg().image_size;
    assert!(
        offset + len <= image,
        "I/O beyond the virtual disk: {offset}+{len} > {image}"
    );
    let (first, last, first_partial, last_partial) = byte_range_to_chunks(offset, len, chunk_size);
    let op = eng.new_op(v, token, kind.into(), len);
    let nchunks_in_op = (last.0 - first.0 + 1) as u64;
    let bytes_per_chunk = (len / nchunks_in_op).max(1);

    match kind {
        IoKind::Write => {
            submit_write(
                eng,
                v,
                op,
                first,
                last,
                first_partial,
                last_partial,
                bytes_per_chunk,
            );
        }
        IoKind::Read => {
            submit_read(eng, v, op, first, last, bytes_per_chunk);
        }
    }
    // If nothing needed doing (degenerate), complete immediately.
    if eng.op_parts(op) == 0 {
        eng.finish_op(op);
    }
}

#[allow(clippy::too_many_arguments)]
fn submit_write(
    eng: &mut Engine,
    v: VmIdx,
    op: OpId,
    first: ChunkId,
    last: ChunkId,
    first_partial: bool,
    last_partial: bool,
    bytes_per_chunk: u64,
) {
    let node = eng.vm(v).vm.host;
    let mut buffered = 0u64;
    let mut throttled = 0u64;
    let mut fetch_chunks: Vec<ChunkId> = Vec::new();
    let mut mirror_batch: Vec<(ChunkId, u64)> = Vec::new();

    for raw in first.0..=last.0 {
        let c = ChunkId(raw);
        // A partial write to an untouched base chunk is a
        // read-modify-write: base content must come from the repository
        // first (§4.2) — unless the host cache already holds the chunk.
        let is_edge_partial = (raw == first.0 && first_partial) || (raw == last.0 && last_partial);
        if is_edge_partial && eng.vm(v).disk.needs_repo_fetch(c) && !eng.vm(v).cache.is_resident(c)
        {
            fetch_chunks.push(c);
        }
        // The migration manager interposes directly below the guest
        // (§4.4): it sees every write immediately — this is what makes
        // "rapid changes of disk state" visible at full write rate.
        let (ver, mirror) = manager_write(eng, v, c);
        if mirror {
            mirror_batch.push((c, ver));
        }
        // The host page cache then decides how fast the write is served.
        match eng.vm_mut(v).cache.classify_write(c) {
            WriteClass::Buffered => buffered += bytes_per_chunk,
            WriteClass::Throttled => throttled += bytes_per_chunk,
        }
    }

    // Guest-side write buffers dirty guest memory at a fraction of the
    // write rate: the memory migration has to re-send those pages.
    let factor = eng.cfg().io_mem_dirty_factor;
    let total = bytes_per_chunk * (last.0 - first.0 + 1) as u64;
    if let Some(mig) = eng.vm_mut(v).migration.as_mut() {
        if matches!(mig.phase, MigPhase::Active | MigPhase::Linger) {
            mig.io_dirty_accum += total as f64 * factor;
        }
    }

    if !fetch_chunks.is_empty() {
        repo_fetch(eng, v, Some(op), fetch_chunks);
    }
    if buffered > 0 {
        eng.vm_mut(v).writes_buffered_bytes += buffered;
        eng.op_add_parts(op, 1);
        eng.cache_submit(node, buffered, false, op);
    }
    if throttled > 0 {
        // Dirty limit exceeded: the writer pays disk speed.
        eng.vm_mut(v).writes_throttled_bytes += throttled;
        eng.op_add_parts(op, 1);
        eng.disk_submit(node, throttled, DiskCtx::VmOp { op });
    }
    if !mirror_batch.is_empty() {
        // Synchronous mirroring: the guest write completes only after the
        // remote copy does (Haselhorst semantics) — the write-latency
        // penalty the paper criticizes in §3.
        let dest = {
            let mig = eng.vm_mut(v).migration.as_mut().expect("mirroring");
            mig.mirror_flows_inflight += 1;
            mig.dest
        };
        eng.op_add_parts(op, 1);
        let bytes = bytes_per_chunk * mirror_batch.len() as u64;
        eng.start_flow(
            node,
            dest,
            bytes,
            None,
            TrafficTag::Mirror,
            FlowCtx::MirrorWrite {
                vm: v,
                op: Some(op),
                chunks: mirror_batch,
            },
        );
    }

    pump_writeback(eng, v);
}

fn submit_read(
    eng: &mut Engine,
    v: VmIdx,
    op: OpId,
    first: ChunkId,
    last: ChunkId,
    bytes_per_chunk: u64,
) {
    let node = eng.vm(v).vm.host;
    let mut cache_hit = 0u64;
    let mut disk_miss = 0u64;
    let mut fetch_chunks: Vec<ChunkId> = Vec::new();
    let mut ondemand: Vec<ChunkId> = Vec::new();

    for raw in first.0..=last.0 {
        let c = ChunkId(raw);
        // The guest page cache sits above the migration manager: a
        // resident chunk is served from guest RAM no matter what the
        // manager-level transfer state says (it may even hold data newer
        // than anything flushed).
        if eng.vm(v).cache.classify_read(c) == ReadClass::CacheHit {
            cache_hit += bytes_per_chunk;
            continue;
        }
        // Destination-side reads during the pull phase follow Algorithm 4.
        let in_pull_phase = eng
            .vm(v)
            .migration
            .as_ref()
            .map(|m| m.phase == MigPhase::PullPhase)
            .unwrap_or(false);
        if in_pull_phase {
            let path = {
                let mig = eng.vm_mut(v).migration.as_mut().expect("pull phase");
                mig.hybrid_dst.as_mut().expect("dest state").on_read(c)
            };
            match path {
                ReadPath::Local => {}
                ReadPath::WaitForPull => {
                    eng.op_add_parts(op, 1);
                    let vm = eng.vm_mut(v);
                    vm.reads_pull_blocked += 1;
                    let mig = vm.migration.as_mut().expect("pull phase");
                    mig.pull_waiters.entry(c).or_default().push(op);
                    continue;
                }
                ReadPath::PullOnDemand => {
                    eng.op_add_parts(op, 1);
                    {
                        let vm = eng.vm_mut(v);
                        vm.reads_pull_blocked += 1;
                        let mig = vm.migration.as_mut().expect("pull phase");
                        mig.pull_waiters.entry(c).or_default().push(op);
                        mig.ondemand_chunks += 1;
                    }
                    ondemand.push(c);
                    continue;
                }
            }
        }
        if eng.vm(v).disk.needs_repo_fetch(c) {
            fetch_chunks.push(c);
            continue;
        }
        disk_miss += bytes_per_chunk;
        eng.vm_mut(v).cache.fill(c);
    }
    {
        let vm = eng.vm_mut(v);
        vm.reads_hit_bytes += cache_hit;
        vm.reads_miss_bytes += disk_miss;
    }

    if !ondemand.is_empty() {
        // All on-demand chunks of this read op travel as one request —
        // one source disk read, one flow, one completion event. During
        // a transfer stall the request is deferred instead: the reads
        // stay parked as pull waiters and the batch goes out when the
        // stall clears (the outage window admits *no* storage traffic).
        let stalled = {
            let mig = eng.vm_mut(v).migration.as_mut().expect("pull phase");
            if mig.stalled_until.is_some() {
                mig.stalled_ondemand.extend(ondemand.iter().copied());
                true
            } else {
                mig.pulls_inflight += 1;
                false
            }
        };
        if !stalled {
            let (src, dst, epoch) = {
                let vm = eng.vm(v);
                let mig = vm.migration.as_ref().expect("pull phase");
                (mig.source, mig.dest, vm.mig_epoch)
            };
            eng.send_ctl(
                dst,
                src,
                Ctl::PullRequest {
                    vm: v,
                    chunks: ondemand,
                    background: false,
                    epoch,
                },
            );
        }
    }
    if !fetch_chunks.is_empty() {
        repo_fetch(eng, v, Some(op), fetch_chunks);
    }
    if cache_hit > 0 {
        eng.op_add_parts(op, 1);
        eng.cache_submit(node, cache_hit, true, op);
    }
    if disk_miss > 0 {
        eng.op_add_parts(op, 1);
        eng.disk_submit(node, disk_miss, DiskCtx::VmOp { op });
    }
}

/// The manager-level write of chunk `c`: stamps the logical version,
/// updates the physical store at the current host, and notifies the
/// active migration policy (Algorithm 2 on the source, Algorithm 4's
/// write clause on the destination).
///
/// Returns `(version, should_mirror)`.
pub(crate) fn manager_write(eng: &mut Engine, v: VmIdx, c: ChunkId) -> (u64, bool) {
    if eng.vm(v).disk.modified().contains(c) {
        // Overwrite of an already-dirty chunk: the telemetry signal the
        // cost planner's withheld-set and re-send terms are built on.
        eng.vm_mut(v).rewrite_chunk_writes += 1;
    }
    let ver = eng.vm_mut(v).disk.write(c);
    eng.vm_mut(v).store.apply(c, ver);
    let mut mirror = false;
    let mut superseded_pull = false;
    let mut pump_needed = false;
    let mut maybe_done = false;
    if let Some(mig) = eng.vm_mut(v).migration.as_mut() {
        match mig.phase {
            MigPhase::Active | MigPhase::Linger | MigPhase::StopAndCopy | MigPhase::SyncDrain => {
                if let Some(src) = mig.hybrid_src.as_mut() {
                    src.on_write(c);
                    pump_needed = true;
                }
                if let Some(src) = mig.precopy_src.as_mut() {
                    src.on_write(c);
                    pump_needed = true;
                }
                if let Some(src) = mig.mirror_src.as_mut() {
                    src.on_write(c);
                    mirror = matches!(mig.phase, MigPhase::Active | MigPhase::Linger);
                }
            }
            MigPhase::PullPhase => {
                if let Some(dst) = mig.hybrid_dst.as_mut() {
                    superseded_pull = dst.on_write(c);
                    maybe_done = true;
                }
            }
            MigPhase::Complete | MigPhase::Aborted => {}
        }
    }
    if superseded_pull {
        // The write supersedes an in-flight pull of this chunk: the
        // content is local now, so reads waiting on the pull complete
        // immediately. The chunk's batch flow keeps running (it carries
        // the rest of its manifest); the superseded chunk arrives with a
        // stale version, which the store rejects.
        let waiters = eng
            .vm_mut(v)
            .migration
            .as_mut()
            .and_then(|m| m.pull_waiters.remove(&c))
            .unwrap_or_default();
        for op in waiters {
            eng.op_part_done(op);
        }
    }
    if pump_needed {
        super::migration::pump_push(eng, v);
    }
    if maybe_done {
        super::migration::maybe_complete(eng, v);
    }
    (ver, mirror)
}

/// Background write-back pump: drains dirty page-cache chunks to the
/// current host's disk, bounded by `writeback_depth`. Frozen while the
/// guest is paused (write-back is guest-kernel activity).
pub(crate) fn pump_writeback(eng: &mut Engine, v: VmIdx) {
    if eng.vm(v).crashed || eng.vm(v).vm.state() == VmState::Paused {
        return;
    }
    let depth = eng.cfg().writeback_depth;
    let chunk_size = eng.cfg().chunk_size;
    loop {
        let vm = eng.vm_mut(v);
        if vm.wb_inflight >= depth {
            return;
        }
        let flushing = !vm.fsync_waiters.is_empty();
        let threshold = vm.cache.needs_writeback();
        let kupdate = vm.kupdate_credit > 0 && vm.cache.has_writeback_work();
        let should = threshold || kupdate || (flushing && vm.cache.has_writeback_work());
        if !should {
            return;
        }
        let Some(c) = vm.cache.start_writeback() else {
            return;
        };
        if !threshold && !flushing {
            vm.kupdate_credit -= 1;
        }
        vm.wb_inflight += 1;
        let node = vm.vm.host;
        eng.disk_submit(node, chunk_size, DiskCtx::Writeback { vm: v, chunk: c });
    }
}

/// A write-back disk write finished. Purely physical: the migration
/// manager already saw the write when the guest issued it.
pub(crate) fn writeback_done(eng: &mut Engine, v: VmIdx, c: ChunkId) {
    eng.vm_mut(v).cache.writeback_done(c);
    eng.vm_mut(v).wb_inflight -= 1;
    check_fsync(eng, v);
    pump_writeback(eng, v);
}

/// Fsync: wait until the whole dirty set is flushed.
pub(crate) fn submit_fsync(eng: &mut Engine, v: VmIdx, token: ActionToken) {
    let op = eng.new_op(v, token, OpKind::Fsync, 0);
    let clean = {
        let vm = eng.vm(v);
        !vm.cache.has_writeback_work() && vm.wb_inflight == 0
    };
    if clean {
        eng.finish_op(op);
        return;
    }
    eng.vm_mut(v).fsync_waiters.push(op);
    pump_writeback(eng, v);
}

fn check_fsync(eng: &mut Engine, v: VmIdx) {
    let done = {
        let vm = eng.vm(v);
        !vm.fsync_waiters.is_empty() && !vm.cache.has_writeback_work() && vm.wb_inflight == 0
    };
    if done {
        let waiters = std::mem::take(&mut eng.vm_mut(v).fsync_waiters);
        for op in waiters {
            eng.finish_op(op);
        }
    }
}

// ---------------- repository fetch pipeline ----------------

/// Fetch base chunks from the striped repository: replica disk read, then
/// a network flow to the requesting node (skipped when the replica is the
/// node itself).
pub(crate) fn repo_fetch(eng: &mut Engine, v: VmIdx, op: Option<OpId>, chunks: Vec<ChunkId>) {
    if let Some(o) = op {
        eng.op_add_parts(o, chunks.len() as u32);
    }
    repo_dispatch(eng, v, op, chunks);
}

/// Re-issue a fetch whose replica or wire was lost to a crash: the op's
/// outstanding parts were already counted by the original
/// [`repo_fetch`], so only the dispatch repeats — now avoiding the dead
/// replica.
pub(crate) fn repo_refetch(eng: &mut Engine, v: VmIdx, op: Option<OpId>, chunks: Vec<ChunkId>) {
    repo_dispatch(eng, v, op, chunks);
}

fn repo_dispatch(eng: &mut Engine, v: VmIdx, op: Option<OpId>, chunks: Vec<ChunkId>) {
    let node = eng.vm(v).vm.host;
    let chunk_size = eng.cfg().chunk_size;
    // Striping sends different chunks to different replicas; coalesce
    // per replica so each serves one disk read + one flow per fetch
    // instead of one per chunk. Replica count is small: a linear probe
    // beats a map.
    let mut groups: Vec<(NodeId, Vec<ChunkId>)> = Vec::new();
    for c in chunks {
        let replica = eng.repo_mut().begin_fetch(c);
        match groups.iter_mut().find(|(r, _)| *r == replica) {
            Some((_, g)) => g.push(c),
            None => groups.push((replica, vec![c])),
        }
    }
    for (replica, group) in groups {
        if eng.node_crashed(replica.0) {
            // Selection fell back to a dead node: every replica of these
            // chunks is down. Degrade the read instead of hanging the
            // guest (content unavailability is a repository-durability
            // event, not a simulation deadlock).
            for _ in &group {
                eng.repo_mut().end_fetch(replica);
            }
            if let Some(o) = op {
                for _ in &group {
                    eng.op_part_done(o);
                }
            }
            continue;
        }
        let bytes = chunk_size * group.len() as u64;
        eng.disk_submit(
            replica.0,
            bytes,
            DiskCtx::RepoRead {
                vm: v,
                node,
                chunks: group,
                op,
                replica,
            },
        );
    }
}

/// Replica-side disk read finished: forward over the network (or locally).
pub(crate) fn repo_read_done(
    eng: &mut Engine,
    v: VmIdx,
    node: u32,
    chunks: Vec<ChunkId>,
    op: Option<OpId>,
    replica: NodeId,
) {
    let bytes = eng.cfg().chunk_size * chunks.len() as u64;
    if replica.0 == node {
        repo_fetch_arrived(eng, v, node, chunks, op, replica);
        return;
    }
    eng.start_flow(
        replica.0,
        node,
        bytes,
        None,
        TrafficTag::RepoFetch,
        FlowCtx::RepoFetch {
            vm: v,
            node,
            chunks,
            op,
            replica,
        },
    );
}

/// Base content landed at the requesting node.
pub(crate) fn repo_fetch_arrived(
    eng: &mut Engine,
    v: VmIdx,
    node: u32,
    chunks: Vec<ChunkId>,
    op: Option<OpId>,
    replica: NodeId,
) {
    // Fetch load is accounted per chunk (begin_fetch in `repo_fetch`),
    // so a batched arrival releases one unit per carried chunk.
    for _ in &chunks {
        eng.repo_mut().end_fetch(replica);
    }
    let bytes = eng.cfg().chunk_size * chunks.len() as u64;
    for &c in &chunks {
        eng.vm_mut(v).disk.cache_base(c);
        eng.vm_mut(v).cache.fill(c);
        eng.vm_mut(v).store.apply(c, 0);
    }
    eng.ingest(node, bytes);
    if let Some(o) = op {
        for _ in &chunks {
            eng.op_part_done(o);
        }
    }
}
