//! Offline stand-in for the `toml` crate: renders the serde stand-in's
//! [`Value`] model as TOML and parses the subset this workspace emits.
//!
//! Writer conventions (chosen so every scenario file round-trips):
//!
//! * the top-level map becomes the root table; nested maps become
//!   `[dotted.section]` tables,
//! * sequences of maps become `[[array of tables]]`,
//! * maps nested inside array-of-table elements (e.g. enum payloads like
//!   a workload spec) are written as inline tables,
//! * `Value::Null` entries are omitted (TOML has no null; absent keys
//!   deserialize to `None`),
//! * floats always carry a fractional part or exponent; `nan`/`inf`
//!   follow TOML 1.0 syntax.
//!
//! The parser supports the matching subset: dotted `[table]` headers,
//! `[[array of tables]]`, basic strings, integers, floats, booleans,
//! single-line arrays, inline tables and `#` comments.

use serde::{Deserialize, Error, Serialize, Value};

/// Serialize a value to a TOML document. The value must serialize to a
/// map (TOML documents are tables at top level).
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let v = value.to_value();
    let Value::Map(entries) = &v else {
        return Err(Error::new(format!(
            "top-level TOML value must be a table, found {}",
            v.kind()
        )));
    };
    let mut out = String::new();
    write_table(&mut out, entries, &mut Vec::new());
    Ok(out)
}

/// Deserialize a value from a TOML document.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    T::from_value(&parse(s)?)
}

// ---------------- writer ----------------

fn is_table(v: &Value) -> bool {
    matches!(v, Value::Map(_))
}

fn is_array_of_tables(v: &Value) -> bool {
    matches!(v, Value::Seq(items) if !items.is_empty() && items.iter().all(is_table))
}

fn write_table(out: &mut String, entries: &[(String, Value)], path: &mut Vec<String>) {
    // Scalars and inline arrays first, then sub-tables and table arrays
    // (TOML requires inline keys before the first section header).
    for (k, v) in entries {
        if matches!(v, Value::Null) || is_table(v) || is_array_of_tables(v) {
            continue;
        }
        out.push_str(&format!("{} = ", bare_key(k)));
        write_inline(out, v);
        out.push('\n');
    }
    for (k, v) in entries {
        match v {
            Value::Map(sub) => {
                path.push(k.clone());
                out.push_str(&format!("\n[{}]\n", path.join(".")));
                write_table(out, sub, path);
                path.pop();
            }
            Value::Seq(items) if is_array_of_tables(v) => {
                for item in items {
                    let Value::Map(sub) = item else {
                        unreachable!()
                    };
                    path.push(k.clone());
                    out.push_str(&format!("\n[[{}]]\n", path.join(".")));
                    write_table(out, sub, path);
                    path.pop();
                }
            }
            _ => {}
        }
    }
}

fn bare_key(k: &str) -> String {
    let bare = !k.is_empty()
        && k.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-');
    if bare {
        k.to_string()
    } else {
        toml_string(k)
    }
}

/// A TOML basic string with TOML-syntax escapes (`\uXXXX`, not Rust's
/// `\u{...}` — the latter is what `format!("{s:?}")` would produce and
/// no TOML parser accepts it).
fn toml_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 || c == '\u{7f}' => {
                out.push_str(&format!("\\u{:04X}", c as u32))
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn write_inline(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("{}"), // unreachable from write_table; defensive
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::F64(x) => out.push_str(&fmt_toml_f64(*x)),
        Value::Str(s) => out.push_str(&toml_string(s)),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_inline(out, item);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push_str("{ ");
            let mut first = true;
            for (k, val) in entries {
                if matches!(val, Value::Null) {
                    continue;
                }
                if !first {
                    out.push_str(", ");
                }
                first = false;
                out.push_str(&format!("{} = ", bare_key(k)));
                write_inline(out, val);
            }
            out.push_str(" }");
        }
    }
}

/// TOML floats must be distinguishable from integers.
fn fmt_toml_f64(x: f64) -> String {
    if x.is_nan() {
        return "nan".to_string();
    }
    if x.is_infinite() {
        return if x > 0.0 { "inf" } else { "-inf" }.to_string();
    }
    let s = format!("{x}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

// ---------------- parser ----------------

/// Parse a TOML document into a [`Value::Map`].
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut root: Vec<(String, Value)> = Vec::new();
    // Path of the table currently receiving `key = value` lines.
    let mut current: Vec<PathSeg> = Vec::new();

    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
        line: 1,
    };
    loop {
        p.skip_ws_and_comments(true);
        let Some(b) = p.peek() else { break };
        if b == b'[' {
            p.pos += 1;
            let array = p.peek() == Some(b'[');
            if array {
                p.pos += 1;
            }
            let path = p.dotted_key()?;
            p.expect(b']')?;
            if array {
                p.expect(b']')?;
            }
            p.end_of_line()?;
            current = path
                .iter()
                .map(|k| PathSeg {
                    key: k.clone(),
                    array: false,
                })
                .collect();
            if array {
                current.last_mut().expect("non-empty header").array = true;
                push_array_element(&mut root, &current)?;
            }
        } else {
            let key = p.key()?;
            p.skip_inline_ws();
            p.expect(b'=')?;
            let value = p.value()?;
            p.end_of_line()?;
            let table = resolve_table(&mut root, &current)?;
            if table.iter().any(|(k, _)| *k == key) {
                return Err(Error::new(format!("duplicate key `{key}`")));
            }
            table.push((key, value));
        }
    }
    Ok(Value::Map(root))
}

struct PathSeg {
    key: String,
    array: bool,
}

/// Walk (creating as needed) to the table addressed by `path`.
fn resolve_table<'a>(
    root: &'a mut Vec<(String, Value)>,
    path: &[PathSeg],
) -> Result<&'a mut Vec<(String, Value)>, Error> {
    let mut table = root;
    for seg in path {
        if !table.iter().any(|(k, _)| *k == seg.key) {
            let fresh = if seg.array {
                Value::Seq(Vec::new())
            } else {
                Value::Map(Vec::new())
            };
            table.push((seg.key.clone(), fresh));
        }
        let slot = table
            .iter_mut()
            .find(|(k, _)| *k == seg.key)
            .map(|(_, v)| v)
            .expect("just ensured");
        table = match slot {
            Value::Map(sub) => sub,
            Value::Seq(items) => match items.last_mut() {
                Some(Value::Map(sub)) => sub,
                _ => {
                    return Err(Error::new(format!(
                        "array `{}` has no open table element",
                        seg.key
                    )))
                }
            },
            other => {
                return Err(Error::new(format!(
                    "key `{}` is a {}, not a table",
                    seg.key,
                    other.kind()
                )))
            }
        };
    }
    Ok(table)
}

/// `[[a.b]]`: append a fresh element to the table array at the path.
fn push_array_element(root: &mut Vec<(String, Value)>, path: &[PathSeg]) -> Result<(), Error> {
    let (last, parents) = path.split_last().expect("non-empty");
    let parent = resolve_table(root, parents)?;
    if !parent.iter().any(|(k, _)| *k == last.key) {
        parent.push((last.key.clone(), Value::Seq(Vec::new())));
    }
    let slot = parent
        .iter_mut()
        .find(|(k, _)| *k == last.key)
        .map(|(_, v)| v)
        .expect("just ensured");
    match slot {
        Value::Seq(items) => {
            items.push(Value::Map(Vec::new()));
            Ok(())
        }
        other => Err(Error::new(format!(
            "key `{}` is a {}, not an array of tables",
            last.key,
            other.kind()
        ))),
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn err(&self, msg: &str) -> Error {
        Error::new(format!("TOML line {}: {msg}", self.line))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn skip_inline_ws(&mut self) {
        while matches!(self.peek(), Some(b' ') | Some(b'\t')) {
            self.pos += 1;
        }
    }

    /// Skip whitespace; if `newlines`, also skip newlines and comments.
    fn skip_ws_and_comments(&mut self, newlines: bool) {
        loop {
            match self.peek() {
                Some(b' ') | Some(b'\t') => self.pos += 1,
                Some(b'\r') if newlines => self.pos += 1,
                Some(b'\n') if newlines => {
                    self.line += 1;
                    self.pos += 1;
                }
                Some(b'#') if newlines => {
                    while !matches!(self.peek(), None | Some(b'\n')) {
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
    }

    /// Consume end-of-line (optional comment, then newline or EOF).
    fn end_of_line(&mut self) -> Result<(), Error> {
        self.skip_inline_ws();
        if self.peek() == Some(b'#') {
            while !matches!(self.peek(), None | Some(b'\n')) {
                self.pos += 1;
            }
        }
        match self.peek() {
            None => Ok(()),
            Some(b'\n') => {
                self.line += 1;
                self.pos += 1;
                Ok(())
            }
            Some(b'\r') => {
                self.pos += 1;
                self.expect(b'\n')?;
                self.line += 1;
                Ok(())
            }
            Some(other) => Err(self.err(&format!("unexpected `{}`", other as char))),
        }
    }

    fn key(&mut self) -> Result<String, Error> {
        self.skip_inline_ws();
        if self.peek() == Some(b'"') {
            return self.basic_string();
        }
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected key"));
        }
        Ok(std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ascii key")
            .to_string())
    }

    fn dotted_key(&mut self) -> Result<Vec<String>, Error> {
        let mut parts = vec![self.key()?];
        loop {
            self.skip_inline_ws();
            if self.peek() == Some(b'.') {
                self.pos += 1;
                parts.push(self.key()?);
            } else {
                break;
            }
        }
        Ok(parts)
    }

    fn basic_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\n' => return Err(self.err("newline in basic string")),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' | b'U' => {
                            let len = if esc == b'u' { 4 } else { 8 };
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + len)
                                .ok_or_else(|| self.err("bad unicode escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad unicode escape"))?;
                            self.pos += len;
                            s.push(char::from_u32(code).ok_or_else(|| self.err("bad code point"))?);
                        }
                        other => return Err(self.err(&format!("bad escape `\\{}`", other as char))),
                    }
                }
                _ => {
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    s.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws_and_comments(false);
        match self.peek() {
            Some(b'"') => Ok(Value::Str(self.basic_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                loop {
                    self.skip_ws_and_comments(true);
                    if self.peek() == Some(b']') {
                        self.pos += 1;
                        return Ok(Value::Seq(items));
                    }
                    items.push(self.value()?);
                    self.skip_ws_and_comments(true);
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(self.err("bad array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_inline_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    let key = self.key()?;
                    self.skip_inline_ws();
                    self.expect(b'=')?;
                    let value = self.value()?;
                    if entries.iter().any(|(k, _)| *k == key) {
                        return Err(self.err(&format!("duplicate key `{key}` in inline table")));
                    }
                    entries.push((key, value));
                    self.skip_inline_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                            self.skip_inline_ws();
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(self.err("bad inline table")),
                    }
                }
            }
            Some(b't') | Some(b'f') | Some(b'n') | Some(b'i') => {
                let word = self.word();
                match word.as_str() {
                    "true" => Ok(Value::Bool(true)),
                    "false" => Ok(Value::Bool(false)),
                    "nan" => Ok(Value::F64(f64::NAN)),
                    "inf" => Ok(Value::F64(f64::INFINITY)),
                    other => Err(self.err(&format!("unexpected `{other}`"))),
                }
            }
            Some(b) if b == b'-' || b == b'+' || b.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn word(&mut self) -> String {
        let start = self.pos;
        while matches!(self.peek(), Some(b) if b.is_ascii_alphanumeric()) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ascii")
            .to_string()
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if matches!(self.peek(), Some(b'-') | Some(b'+')) {
            self.pos += 1;
        }
        if self.bytes[self.pos..].starts_with(b"inf") {
            self.pos += 3;
            let neg = self.bytes[start] == b'-';
            return Ok(Value::F64(if neg {
                f64::NEG_INFINITY
            } else {
                f64::INFINITY
            }));
        }
        if self.bytes[self.pos..].starts_with(b"nan") {
            self.pos += 3;
            return Ok(Value::F64(f64::NAN));
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' | b'_' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                    if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
        let text: String = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ascii")
            .chars()
            .filter(|&c| c != '_' && c != '+')
            .collect();
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| self.err(&format!("bad float `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| self.err(&format!("bad integer `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| self.err(&format!("bad integer `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(entries: Vec<(&str, Value)>) -> Value {
        Value::Map(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    #[test]
    fn scalars_and_sections() {
        let src =
            "a = 1\nb = -2\nc = 1.5\nd = true\ne = \"hi\"\n\n[sub]\nx = 3\n\n[sub.deep]\ny = 4\n";
        let v = parse(src).unwrap();
        assert_eq!(v.get("a"), Some(&Value::U64(1)));
        assert_eq!(v.get("b"), Some(&Value::I64(-2)));
        assert_eq!(v.get("c"), Some(&Value::F64(1.5)));
        assert_eq!(v.get("d"), Some(&Value::Bool(true)));
        assert_eq!(v.get("e"), Some(&Value::Str("hi".into())));
        let sub = v.get("sub").unwrap();
        assert_eq!(sub.get("x"), Some(&Value::U64(3)));
        assert_eq!(sub.get("deep").unwrap().get("y"), Some(&Value::U64(4)));
    }

    #[test]
    fn arrays_of_tables_and_inline() {
        let src = "[[vms]]\nnode = 0\nworkload = { Idle = { bursts = 3, burst_secs = 0.5 } }\n\n[[vms]]\nnode = 1\n";
        let v = parse(src).unwrap();
        let Some(Value::Seq(vms)) = v.get("vms") else {
            panic!("vms missing")
        };
        assert_eq!(vms.len(), 2);
        assert_eq!(vms[0].get("node"), Some(&Value::U64(0)));
        let wl = vms[0].get("workload").unwrap().get("Idle").unwrap();
        assert_eq!(wl.get("bursts"), Some(&Value::U64(3)));
        assert_eq!(wl.get("burst_secs"), Some(&Value::F64(0.5)));
    }

    #[test]
    fn writer_output_reparses_identically() {
        let v = table(vec![
            ("horizon_secs", Value::F64(300.0)),
            ("grouped", Value::Bool(false)),
            (
                "cluster",
                table(vec![
                    ("nodes", Value::U64(4)),
                    ("nic_bw", Value::F64(123_207_680.0)),
                    ("mem", table(vec![("max_rounds", Value::U64(30))])),
                ]),
            ),
            (
                "vms",
                Value::Seq(vec![table(vec![
                    ("node", Value::U64(0)),
                    (
                        "workload",
                        table(vec![(
                            "SeqWrite",
                            table(vec![
                                ("offset", Value::U64(0)),
                                ("think_secs", Value::F64(0.05)),
                            ]),
                        )]),
                    ),
                ])]),
            ),
            (
                "tags",
                Value::Seq(vec![Value::Str("a".into()), Value::Str("b".into())]),
            ),
        ]);
        let mut out = String::new();
        let Value::Map(entries) = &v else {
            unreachable!()
        };
        write_table(&mut out, entries, &mut Vec::new());
        let back = parse(&out).unwrap();
        // The writer emits scalar keys before tables, so key order may
        // differ; deserialization looks up by key, so compare sorted.
        assert_eq!(normalize(&back), normalize(&v), "document:\n{out}");
    }

    /// Sort map keys recursively for order-insensitive comparison.
    fn normalize(v: &Value) -> Value {
        match v {
            Value::Seq(items) => Value::Seq(items.iter().map(normalize).collect()),
            Value::Map(entries) => {
                let mut sorted: Vec<(String, Value)> = entries
                    .iter()
                    .map(|(k, v)| (k.clone(), normalize(v)))
                    .collect();
                sorted.sort_by(|a, b| a.0.cmp(&b.0));
                Value::Map(sorted)
            }
            other => other.clone(),
        }
    }

    #[test]
    fn floats_keep_distinction_from_integers() {
        assert_eq!(fmt_toml_f64(2.0), "2.0");
        assert_eq!(parse("x = 2.0").unwrap().get("x"), Some(&Value::F64(2.0)));
        assert_eq!(parse("x = 2").unwrap().get("x"), Some(&Value::U64(2)));
    }

    #[test]
    fn null_entries_are_omitted() {
        let v = table(vec![("a", Value::Null), ("b", Value::U64(1))]);
        let Value::Map(entries) = &v else {
            unreachable!()
        };
        let mut out = String::new();
        write_table(&mut out, entries, &mut Vec::new());
        assert!(!out.contains('a'));
        assert_eq!(parse(&out).unwrap().get("b"), Some(&Value::U64(1)));
    }

    #[test]
    fn comments_and_blank_lines() {
        let src = "# header\n\na = 1 # trailing\n# more\nb = 2\n";
        let v = parse(src).unwrap();
        assert_eq!(v.get("a"), Some(&Value::U64(1)));
        assert_eq!(v.get("b"), Some(&Value::U64(2)));
    }

    #[test]
    fn duplicate_keys_rejected() {
        assert!(parse("a = 1\na = 2\n").is_err());
        // ... also inside inline tables, where first-wins would silently
        // drop a re-stated knob.
        assert!(parse("w = { bursts = 1, bursts = 99 }\n").is_err());
    }

    #[test]
    fn control_characters_roundtrip_with_toml_escapes() {
        let v = table(vec![(
            "name",
            Value::Str("a\u{1b}b \"quoted\" \\ tab\t bs\u{8} ff\u{c} nl\n".into()),
        )]);
        let Value::Map(entries) = &v else {
            unreachable!()
        };
        let mut out = String::new();
        write_table(&mut out, entries, &mut Vec::new());
        assert!(out.contains("\\u001B"), "TOML-syntax escape, got: {out}");
        assert!(!out.contains("\\u{"), "no Rust-syntax escapes: {out}");
        assert_eq!(parse(&out).unwrap(), v, "document:\n{out}");
    }
}
