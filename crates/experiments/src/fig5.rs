//! Figure 5: impact on a real application — CM1 (§5.5).
//!
//! 64 CM1 ranks (8×8 decomposition), one per source node. While the model
//! runs, `n ∈ 1..7` VMs are migrated *successively*, one per minute.
//! Three panels:
//!
//! * **(a) cumulated migration time** — sum over all `n` migrations,
//! * **(b) migration-attributable network traffic** (GB) — CM1's own
//!   halo-exchange traffic subtracted, as in the paper,
//! * **(c) increase in application execution time** vs. a migration-free
//!   run.

use crate::scenario::{run_scenario, MigrationSpec, ScenarioSpec, VmSpec};
use crate::sweep::parallel_map;
use crate::table::{f, Table};
use crate::Scale;
use lsm_core::config::ClusterConfig;
use lsm_core::policy::StrategyKind;
use lsm_simcore::units::GIB;
use lsm_workloads::{Cm1Params, WorkloadSpec};
use serde::Serialize;

/// Parameters of the Figure 5 experiment.
#[derive(Clone, Debug)]
pub struct Fig5Params {
    /// Ranks (and source nodes).
    pub ranks: u32,
    /// Decomposition width.
    pub grid_w: u32,
    /// CM1 output steps.
    pub iterations: u32,
    /// Successive migration counts to sweep.
    pub ns: Vec<u32>,
    /// Interval between successive migrations, seconds.
    pub interval: f64,
    /// Run horizon.
    pub horizon: f64,
    /// Whether to use the shrunken CM1 rank parameters.
    pub small: bool,
}

impl Fig5Params {
    /// Parameters for the requested scale.
    pub fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Paper => Fig5Params {
                ranks: 64,
                grid_w: 8,
                iterations: 6,
                ns: (1..=7).collect(),
                interval: 60.0,
                horizon: 1500.0,
                small: false,
            },
            Scale::Quick => Fig5Params {
                ranks: 4,
                grid_w: 2,
                iterations: 3,
                ns: vec![1, 2],
                interval: 8.0,
                horizon: 400.0,
                small: true,
            },
        }
    }
}

/// One `(strategy, n)` data point.
#[derive(Clone, Debug, Serialize)]
pub struct Fig5Point {
    /// Strategy under test.
    pub strategy: StrategyKind,
    /// Number of successive migrations.
    pub n: u32,
    /// Panel (a): sum of the `n` migration times, seconds.
    pub cumulated_migration_time_s: f64,
    /// Panel (b): migration-attributable traffic, GB (application halo
    /// traffic excluded).
    pub migration_traffic_gb: f64,
    /// Panel (c): application runtime increase vs. migration-free, s.
    pub runtime_increase_s: f64,
    /// All migrations completed consistently and the app finished.
    pub all_ok: bool,
}

/// Full Figure 5 dataset.
#[derive(Clone, Debug, Serialize)]
pub struct Fig5Result {
    /// All data points.
    pub points: Vec<Fig5Point>,
    /// Migration-free application runtime, seconds.
    pub baseline_runtime_s: f64,
}

/// Produce the Figure 5 scenario for `(strategy, n)` — `n = 0` is the
/// migration-free baseline shape.
pub fn scenario(p: &Fig5Params, strategy: StrategyKind, n: u32) -> ScenarioSpec {
    let nodes = p.ranks + p.ns.iter().copied().max().unwrap_or(1);
    let vms: Vec<VmSpec> = (0..p.ranks)
        .map(|r| {
            let spec = if p.small {
                WorkloadSpec::cm1_small(r, p.ranks, p.grid_w, p.iterations)
            } else {
                WorkloadSpec::Cm1(Cm1Params {
                    rank: r,
                    ranks: p.ranks,
                    grid_w: p.grid_w,
                    iterations: p.iterations,
                    ..Default::default()
                })
            };
            VmSpec::new(r, spec)
        })
        .collect();
    let migrations = (0..n)
        .map(|i| MigrationSpec {
            vm: i,
            dest: p.ranks + i,
            at_secs: p.interval * (i + 1) as f64,
            deadline_secs: None,
            adaptive: None,
        })
        .collect();
    let mut cluster = ClusterConfig::graphene(nodes);
    if p.small {
        cluster = ClusterConfig {
            nodes,
            ..ClusterConfig::small_test()
        };
    }
    ScenarioSpec {
        name: Some(format!("fig5-{}-n{n}", strategy.label())),
        cluster: Some(cluster),
        orchestrator: None,
        autonomic: None,
        resilience: None,
        qos: None,
        vms,
        grouped: true,
        strategy,
        migrations,
        requests: None,
        faults: None,
        cancellations: None,
        horizon_secs: p.horizon,
    }
}

/// Run the whole Figure 5 experiment.
pub fn run_fig5(scale: Scale) -> Fig5Result {
    run_fig5_strategies(scale, &StrategyKind::ALL)
}

/// Run Figure 5 for a subset of strategies.
pub fn run_fig5_strategies(scale: Scale, strategies: &[StrategyKind]) -> Fig5Result {
    let p = Fig5Params::for_scale(scale);

    // Per-strategy migration-free baselines: the runtime increase must
    // isolate what the *migrations* cost (pvfs-shared pays its remote-I/O
    // tax with or without migrations).
    let baselines = parallel_map(strategies.to_vec(), |strategy| {
        let mut base = scenario(&p, strategy, 0);
        base.migrations.clear();
        let r = run_scenario(&base).expect("experiment scenario is valid");
        (
            strategy,
            r.all_finished_at()
                .map(|t| t.as_secs_f64())
                .unwrap_or(f64::NAN),
            r.migration_traffic as f64 / GIB as f64,
        )
    });

    let mut jobs = Vec::new();
    for &(strategy, base_runtime, _) in &baselines {
        for &n in &p.ns {
            jobs.push((strategy, n, base_runtime, scenario(&p, strategy, n)));
        }
    }
    let points = parallel_map(jobs, |(strategy, n, base_runtime, s)| {
        let r = run_scenario(&s).expect("experiment scenario is valid");
        let runtime = r.all_finished_at().map(|t| t.as_secs_f64());
        let all_ok = runtime.is_some()
            && r.migrations
                .iter()
                .all(|m| m.completed && m.consistent.unwrap_or(false));
        // `migration_traffic` already excludes CM1's halo exchanges —
        // the subtraction the paper applies for Fig 5b. PVFS I/O stays
        // in: paying it is the cost of the shared-storage approach, and
        // it is exactly the "huge gap" the paper shows.
        Fig5Point {
            strategy,
            n,
            cumulated_migration_time_s: r.total_migration_time(),
            migration_traffic_gb: r.migration_traffic as f64 / GIB as f64,
            runtime_increase_s: runtime.map(|t| t - base_runtime).unwrap_or(f64::NAN),
            all_ok,
        }
    });

    Fig5Result {
        points,
        baseline_runtime_s: baselines.iter().map(|&(_, t, _)| t).fold(f64::NAN, |a, b| {
            if a.is_nan() {
                b
            } else {
                a.min(b)
            }
        }),
    }
}

impl Fig5Result {
    /// Point lookup.
    pub fn point(&self, strategy: StrategyKind, n: u32) -> &Fig5Point {
        self.points
            .iter()
            .find(|pt| pt.strategy == strategy && pt.n == n)
            .expect("point present")
    }

    /// Panel (a) table.
    pub fn table_time(&self) -> Table {
        let mut t = Table::new(
            "Fig 5a: cumulated migration time (s) vs #successive migrations",
            &["strategy", "n", "cumulated time (s)"],
        );
        for pt in &self.points {
            t.row(vec![
                pt.strategy.label().to_string(),
                pt.n.to_string(),
                f(pt.cumulated_migration_time_s),
            ]);
        }
        t
    }

    /// Panel (b) table.
    pub fn table_traffic(&self) -> Table {
        let mut t = Table::new(
            "Fig 5b: migration network traffic (GB), CM1 halo traffic excluded",
            &["strategy", "n", "traffic (GB)"],
        );
        for pt in &self.points {
            t.row(vec![
                pt.strategy.label().to_string(),
                pt.n.to_string(),
                f(pt.migration_traffic_gb),
            ]);
        }
        t
    }

    /// Panel (c) table.
    pub fn table_slowdown(&self) -> Table {
        let mut t = Table::new(
            "Fig 5c: increase in app execution time (s) vs #successive migrations",
            &["strategy", "n", "runtime increase (s)"],
        );
        for pt in &self.points {
            t.row(vec![
                pt.strategy.label().to_string(),
                pt.n.to_string(),
                f(pt.runtime_increase_s),
            ]);
        }
        t
    }
}
