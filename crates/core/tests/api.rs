//! The fallible orchestration API: every misuse class returns a typed
//! error (never a panic), jobs expose lifecycle + progress mid-run, and
//! observers can watch or abort runs.

use lsm_core::builder::SimulationBuilder;
use lsm_core::config::ClusterConfig;
use lsm_core::engine::{
    Engine, JobId, MigrationProgress, MigrationStatus, Milestone, Observer, RecordingObserver,
    RunControl,
};
use lsm_core::policy::StrategyKind;
use lsm_core::{EngineError, NodeId};
use lsm_simcore::units::MIB;
use lsm_simcore::SimTime;
use lsm_workloads::WorkloadSpec;

fn t(s: f64) -> SimTime {
    SimTime::from_secs_f64(s)
}

fn writer() -> WorkloadSpec {
    WorkloadSpec::SeqWrite {
        offset: 0,
        total: 48 * MIB,
        block: MIB,
        think_secs: 0.02,
    }
}

fn builder() -> SimulationBuilder {
    SimulationBuilder::new(ClusterConfig::small_test()).expect("small_test validates")
}

// ---------------- error paths ----------------

#[test]
fn out_of_range_node_is_an_error() {
    let mut b = builder();
    let err = b
        .add_vm(NodeId(99), writer(), StrategyKind::Hybrid, SimTime::ZERO)
        .unwrap_err();
    assert_eq!(err, EngineError::NodeOutOfRange { node: 99, nodes: 4 });
}

#[test]
fn migration_to_out_of_range_dest_is_an_error() {
    let mut b = builder();
    let vm = b
        .add_vm(NodeId(0), writer(), StrategyKind::Hybrid, SimTime::ZERO)
        .unwrap();
    let err = b.migrate(vm, NodeId(7), t(1.0)).unwrap_err();
    assert_eq!(err, EngineError::NodeOutOfRange { node: 7, nodes: 4 });
}

#[test]
fn migration_to_current_host_is_an_error() {
    let mut b = builder();
    let vm = b
        .add_vm(NodeId(2), writer(), StrategyKind::Hybrid, SimTime::ZERO)
        .unwrap();
    let err = b.migrate(vm, NodeId(2), t(1.0)).unwrap_err();
    assert_eq!(err, EngineError::SameHost { vm: 0, node: 2 });
}

#[test]
fn second_migration_of_same_vm_is_an_error() {
    let mut b = builder();
    let vm = b
        .add_vm(NodeId(0), writer(), StrategyKind::Hybrid, SimTime::ZERO)
        .unwrap();
    b.migrate(vm, NodeId(1), t(1.0)).unwrap();
    let err = b.migrate(vm, NodeId(2), t(5.0)).unwrap_err();
    assert_eq!(err, EngineError::DuplicateMigration { vm: 0 });
}

#[test]
fn zero_capacity_configs_are_errors() {
    for (cfg, needle) in [
        (
            ClusterConfig {
                nodes: 0,
                ..ClusterConfig::small_test()
            },
            "zero nodes",
        ),
        (
            ClusterConfig {
                disk_bw: 0.0,
                ..ClusterConfig::small_test()
            },
            "disk_bw",
        ),
        (
            ClusterConfig {
                nic_bw: f64::NAN,
                ..ClusterConfig::small_test()
            },
            "nic_bw",
        ),
        (
            ClusterConfig {
                chunk_size: 0,
                ..ClusterConfig::small_test()
            },
            "chunk_size",
        ),
        (
            ClusterConfig {
                image_size: 63 * MIB + 1,
                ..ClusterConfig::small_test()
            },
            "not a multiple",
        ),
        (
            ClusterConfig {
                transfer_window: 0,
                ..ClusterConfig::small_test()
            },
            "transfer_window",
        ),
        (
            ClusterConfig {
                repo_replication: 99,
                ..ClusterConfig::small_test()
            },
            "repo_replication",
        ),
    ] {
        let err = SimulationBuilder::new(cfg.clone()).err().expect("rejected");
        match &err {
            EngineError::InvalidConfig { reason } => {
                assert!(reason.contains(needle), "expected `{needle}` in `{reason}`");
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
        // Engine::new applies the same validation.
        assert!(Engine::new(cfg).is_err());
    }
}

#[test]
fn oversized_workload_is_an_error() {
    let mut b = builder();
    let err = b
        .add_vm(
            NodeId(0),
            WorkloadSpec::SeqWrite {
                offset: 0,
                total: 10 << 30,
                block: MIB,
                think_secs: 0.0,
            },
            StrategyKind::Hybrid,
            SimTime::ZERO,
        )
        .unwrap_err();
    assert!(matches!(err, EngineError::WorkloadExceedsImage { .. }));
}

#[test]
fn group_workload_outside_group_is_an_error() {
    let mut b = builder();
    let err = b
        .add_vm(
            NodeId(0),
            WorkloadSpec::cm1_small(0, 4, 2, 2),
            StrategyKind::Hybrid,
            SimTime::ZERO,
        )
        .unwrap_err();
    assert!(matches!(err, EngineError::GroupWorkloadOutsideGroup { .. }));
}

#[test]
fn group_rank_mismatch_is_an_error() {
    let mut b = builder();
    // cm1_small declares 4 ranks but only 2 members are deployed.
    let placements: Vec<(NodeId, WorkloadSpec)> = (0..2)
        .map(|r| (NodeId(r), WorkloadSpec::cm1_small(r, 4, 2, 2)))
        .collect();
    let err = b
        .add_group(&placements, StrategyKind::Hybrid, SimTime::ZERO)
        .unwrap_err();
    assert_eq!(
        err,
        EngineError::GroupRankMismatch {
            expected: 4,
            got: 2
        }
    );
}

#[test]
fn empty_group_is_an_error() {
    let mut b = builder();
    let err = b
        .add_group(&[], StrategyKind::Hybrid, SimTime::ZERO)
        .unwrap_err();
    assert_eq!(err, EngineError::EmptyGroup);
}

#[test]
fn engine_level_misuse_is_also_fallible() {
    // The low-level Engine API applies the same validation as the
    // builder — no panic is reachable by skipping the builder.
    let mut eng = Engine::new(ClusterConfig::small_test()).unwrap();
    assert!(matches!(
        eng.add_vm(9, &writer(), StrategyKind::Hybrid, SimTime::ZERO),
        Err(EngineError::NodeOutOfRange { node: 9, .. })
    ));
    let vm = eng
        .add_vm(0, &writer(), StrategyKind::Hybrid, SimTime::ZERO)
        .unwrap();
    assert!(eng.schedule_migration(vm, 0, t(1.0)).is_err()); // same host
    assert!(eng.schedule_migration(vm, 9, t(1.0)).is_err()); // bad dest
    eng.schedule_migration(vm, 1, t(1.0)).unwrap();
    assert!(matches!(
        eng.schedule_migration(vm, 2, t(2.0)),
        Err(EngineError::DuplicateMigration { vm: 0 })
    ));
}

// ---------------- jobs, progress, observers ----------------

#[test]
fn job_lifecycle_reaches_completed_with_monotone_statuses() {
    let mut b = builder();
    let vm = b
        .add_vm(NodeId(0), writer(), StrategyKind::Hybrid, SimTime::ZERO)
        .unwrap();
    let job = b.migrate(vm, NodeId(1), t(1.0)).unwrap();
    let mut sim = b.build().unwrap();
    assert_eq!(sim.status(job), Some(MigrationStatus::Queued));

    let mut rec = RecordingObserver::default();
    let report = sim.run_observed(t(300.0), &mut rec);

    assert_eq!(sim.status(job), Some(MigrationStatus::Completed));
    let statuses: Vec<MigrationStatus> = rec.statuses.iter().map(|&(_, _, s)| s).collect();
    assert_eq!(
        statuses,
        vec![
            MigrationStatus::TransferringMemory,
            MigrationStatus::SwitchingOver,
            MigrationStatus::TransferringStorage,
            MigrationStatus::Completed,
        ],
        "hybrid lifecycle order"
    );
    // Observer times are monotone and the milestones mirror the report.
    assert!(rec.statuses.windows(2).all(|w| w[0].0 <= w[1].0));
    let m = report.the_migration();
    assert_eq!(m.status, MigrationStatus::Completed);
    assert!(rec
        .milestones
        .iter()
        .any(|&(_, _, ms)| ms == Milestone::ControlTransferred));
    assert_eq!(
        rec.milestones.len(),
        m.timeline.len(),
        "every timeline entry was observed"
    );
}

#[test]
fn progress_is_queryable_mid_run() {
    let mut b = builder();
    let vm = b
        .add_vm(NodeId(0), writer(), StrategyKind::Hybrid, SimTime::ZERO)
        .unwrap();
    let job = b.migrate(vm, NodeId(1), t(1.0)).unwrap();
    let mut sim = b.build().unwrap();

    // Step the horizon: query between steps while the job is live.
    let mut seen_running = false;
    let mut last_pushed = 0;
    for step in 1..=60 {
        sim.run_until(t(step as f64 * 0.5));
        let p = sim.progress(job).expect("job exists");
        assert!(p.chunks_pushed >= last_pushed, "push counter is monotone");
        last_pushed = p.chunks_pushed;
        if !p.status.is_terminal() && p.status != MigrationStatus::Queued {
            seen_running = true;
            assert!(p.eta.is_some(), "running job has an ETA estimate");
        }
    }
    assert!(seen_running, "never observed the job mid-flight");
    sim.run_until(t(300.0));
    let p = sim.progress(job).unwrap();
    assert_eq!(p.status, MigrationStatus::Completed);
    assert_eq!(p.chunks_remaining, 0);
    assert!(p.storage_fraction() >= 1.0 - 1e-12);
    assert!(p.chunks_pushed > 0);
}

/// Aborts the run at the first stop-and-copy.
struct AbortAtSwitchover {
    aborted_at: Option<SimTime>,
}

impl Observer for AbortAtSwitchover {
    fn on_status(
        &mut self,
        _job: JobId,
        status: MigrationStatus,
        now: SimTime,
        _p: &MigrationProgress,
    ) -> RunControl {
        if status == MigrationStatus::SwitchingOver {
            self.aborted_at = Some(now);
            return RunControl::Stop;
        }
        RunControl::Continue
    }
}

#[test]
fn observer_can_abort_a_run() {
    let mut b = builder();
    let vm = b
        .add_vm(NodeId(0), writer(), StrategyKind::Hybrid, SimTime::ZERO)
        .unwrap();
    let job = b.migrate(vm, NodeId(1), t(1.0)).unwrap();
    let mut sim = b.build().unwrap();
    let mut obs = AbortAtSwitchover { aborted_at: None };
    let report = sim.run_observed(t(300.0), &mut obs);

    let stopped = obs.aborted_at.expect("abort fired");
    assert_eq!(sim.now(), stopped, "run stopped at the abort instant");
    assert!(report.horizon < t(300.0), "did not run to the horizon");
    let m = report.the_migration();
    assert_eq!(m.status, MigrationStatus::SwitchingOver);
    assert!(!m.completed);
    // The same simulation can be resumed past the abort point.
    let report = sim.run_until(t(300.0));
    assert_eq!(sim.status(job), Some(MigrationStatus::Completed));
    assert!(report.the_migration().completed);
}

#[test]
fn queued_beyond_horizon_stays_queued_in_report() {
    let mut b = builder();
    let vm = b
        .add_vm(NodeId(0), writer(), StrategyKind::Hybrid, SimTime::ZERO)
        .unwrap();
    let job = b.migrate(vm, NodeId(1), t(500.0)).unwrap();
    let mut sim = b.build().unwrap();
    let report = sim.run_until(t(10.0));
    assert_eq!(sim.status(job), Some(MigrationStatus::Queued));
    let m = report.the_migration();
    assert_eq!(m.status, MigrationStatus::Queued);
    assert!(!m.completed);
    assert_eq!(m.requested_at, t(500.0));
}

#[test]
fn vm_can_migrate_again_after_its_job_is_terminal() {
    let mut b = builder();
    let vm = b
        .add_vm(NodeId(0), writer(), StrategyKind::Hybrid, SimTime::ZERO)
        .unwrap();
    let first = b.migrate(vm, NodeId(1), t(1.0)).unwrap();
    let mut sim = b.build().unwrap();
    // Two live jobs for one VM are still a duplicate.
    assert!(matches!(
        sim.engine_mut()
            .schedule_migration(lsm_hypervisor::VmId(0), 2, t(5.0)),
        Err(EngineError::DuplicateMigration { vm: 0 })
    ));
    sim.run_until(t(300.0));
    assert_eq!(sim.status(first), Some(MigrationStatus::Completed));
    // Once terminal, the VM may migrate again (stepped-horizon workflow).
    let second = sim
        .engine_mut()
        .schedule_migration(lsm_hypervisor::VmId(0), 0, t(310.0))
        .expect("re-migration after completion");
    let report = sim.run_until(t(900.0));
    assert_eq!(sim.status(first), Some(MigrationStatus::Completed));
    assert_eq!(sim.status(second), Some(MigrationStatus::Completed));
    assert_eq!(report.migrations.len(), 2);
    // Each record keeps its own job's data: opposite directions, both
    // consistent, and the first record survived the archive move.
    assert!(report.migrations.iter().all(|m| m.completed));
    assert!(report.migrations.iter().all(|m| m.consistent == Some(true)));
    assert_eq!(report.vms[0].final_host, 0, "migrated back home");
    let p1 = sim.progress(first).unwrap();
    let p2 = sim.progress(second).unwrap();
    assert_eq!(p1.dest, 1);
    assert_eq!(p2.dest, 0);
    assert!(
        p1.chunks_pushed > 0,
        "first job's archive kept its counters"
    );
}

#[test]
fn invalid_workload_parameters_are_errors_not_panics() {
    let mut b = builder();
    // Zero block size would assert inside the Ior constructor.
    let err = b
        .add_vm(
            NodeId(0),
            WorkloadSpec::Ior(lsm_workloads::IorParams {
                file_size: MIB,
                block_size: 0,
                iterations: 1,
                file_offset: 0,
                fsync_per_phase: false,
            }),
            StrategyKind::Hybrid,
            SimTime::ZERO,
        )
        .unwrap_err();
    assert!(matches!(err, EngineError::InvalidWorkload { .. }), "{err}");
    // Zipf exponent out of range would silently misbehave.
    let err = b
        .add_vm(
            NodeId(0),
            WorkloadSpec::HotspotWrite {
                offset: 0,
                region_blocks: 8,
                block: MIB,
                count: 10,
                theta: 1.5,
                think_secs: 0.0,
                seed: 1,
            },
            StrategyKind::Hybrid,
            SimTime::ZERO,
        )
        .unwrap_err();
    assert!(err.to_string().contains("theta"), "{err}");
    // Non-rectangular CM1 decomposition would assert in the group path.
    let placements: Vec<(NodeId, WorkloadSpec)> = (0..3)
        .map(|r| (NodeId(r), WorkloadSpec::cm1_small(r, 3, 2, 1)))
        .collect();
    let err = b
        .add_group(&placements, StrategyKind::Hybrid, SimTime::ZERO)
        .unwrap_err();
    assert!(matches!(err, EngineError::InvalidWorkload { .. }), "{err}");
}

#[test]
fn per_vm_mixed_strategies_coexist() {
    let mut b = builder();
    let a = b
        .add_vm(NodeId(0), writer(), StrategyKind::Hybrid, SimTime::ZERO)
        .unwrap();
    let c = b
        .add_vm(NodeId(1), writer(), StrategyKind::Postcopy, SimTime::ZERO)
        .unwrap();
    let ja = b.migrate(a, NodeId(2), t(1.0)).unwrap();
    let jc = b.migrate(c, NodeId(3), t(2.0)).unwrap();
    let mut sim = b.build().unwrap();
    sim.run_until(t(600.0));
    for job in [ja, jc] {
        assert_eq!(sim.status(job), Some(MigrationStatus::Completed));
    }
    let pa = sim.progress(ja).unwrap();
    let pc = sim.progress(jc).unwrap();
    assert_eq!(pa.strategy, StrategyKind::Hybrid);
    assert_eq!(pc.strategy, StrategyKind::Postcopy);
    assert!(pa.chunks_pushed > 0, "hybrid pushes");
    assert_eq!(pc.chunks_pushed, 0, "postcopy never pushes");
    assert!(pc.chunks_pulled > 0, "postcopy pulls");
}
