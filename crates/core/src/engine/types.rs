//! Internal runtime state of the engine: events, per-node and per-VM
//! bookkeeping, in-flight operation contexts.

use crate::policy::{HybridDest, HybridSource, MirrorSource, PrecopySource, StrategyKind};
use lsm_blockdev::{ChunkId, ChunkSet, PageCache, VirtualDisk};
use lsm_hypervisor::{PrecopyMemory, Vm};
use lsm_netsim::NodeId;
use lsm_simcore::resource::{ReqId, SharedResource};
use lsm_simcore::time::{SimDuration, SimTime};
use lsm_workloads::{ActionToken, IoKind, Workload};
use std::collections::{HashMap, VecDeque};

pub(crate) type VmIdx = u32;
pub(crate) type OpId = u64;

/// Engine events. Resource "wake" events are drained against the
/// resource's own completion clock, so stale wakes are harmless.
#[derive(PartialEq, Eq, Debug)]
pub(crate) enum Ev {
    /// The network may have a completion due.
    NetWake,
    /// A node's disk may have a completion due.
    DiskWake(u32),
    /// A node's cache-read lane may have a completion due.
    CacheRdWake(u32),
    /// A node's cache-write lane may have a completion due.
    CacheWrWake(u32),
    /// A VM's current compute burst finished (virtual-progress timer).
    ComputeDone(VmIdx),
    /// A control message arrives at `node`.
    CtlArrive(u32, Ctl),
    /// Start the workload of a VM.
    VmStart(VmIdx),
    /// A scheduled migration job's start time arrived: the job becomes
    /// ready for planner admission (the index into `Engine::jobs`).
    MigrationStart(u32),
    /// A submitted orchestration request's time arrived (the index into
    /// the orchestrator's intent table).
    RequestReady(u32),
    /// An admission slot freed earlier in this instant; the orchestrator
    /// re-drains its ready queue.
    PlannerDrain,
    /// Periodic per-VM I/O telemetry sampling (windowed write/read rates
    /// for the adaptive planner).
    TelemetryTick,
    /// Generic per-operation timer (PVFS op overhead).
    OpTimer(OpId),
    /// Re-check a gated stop-and-copy (block stream convergence poll).
    ConvergencePoll(VmIdx),
    /// Periodic dirty-expiry write-back sweep (Linux kupdate).
    KupdateTick(VmIdx),
    /// A scheduled fault fires (the index into `Engine::faults`; the
    /// payload lives there because fault kinds carry floats, which the
    /// `Eq`-requiring event queue cannot).
    Fault(u32),
    /// A job's configured deadline expires (index into `Engine::jobs`).
    JobDeadline(u32),
    /// A transfer stall on this VM's migration ends.
    StallOver(VmIdx),
    /// Periodic autonomic-rebalancer scan: classify node pressure and
    /// originate/re-plan migrations (only scheduled when an
    /// `[autonomic]` configuration is installed).
    RebalanceTick,
    /// A job's retry backoff elapsed: re-place if needed and re-queue
    /// the job through the planner (index into `Engine::jobs`; only
    /// scheduled when a `[resilience]` configuration is installed).
    RetryFire(u32),
    /// A scheduled cancellation of a job arrives (index into
    /// `Engine::jobs`).
    CancelFire(u32),
}

/// Control-plane messages between migration managers (latency-modeled).
#[derive(PartialEq, Eq, Debug)]
pub(crate) enum Ctl {
    /// Source → destination: assume the destination role (Algorithm 3,
    /// MIGRATION_NOTIFICATION).
    MigrationNotify { vm: VmIdx },
    /// Source → destination: remaining set + write counts (Algorithm 3,
    /// TRANSFER_IO_CONTROL). The VM resumes at the destination once this
    /// arrives — the destination must be ready to intercept I/O first.
    TransferIoControl {
        vm: VmIdx,
        remaining: ChunkSet,
        counts: Vec<u32>,
    },
    /// Destination → source: request chunks (prefetch batch or on-demand).
    PullRequest {
        vm: VmIdx,
        chunks: Vec<ChunkId>,
        /// True for BACKGROUND_PULL slots, false for on-demand reads.
        background: bool,
        /// Migration generation that issued the request (see
        /// `VmRt::mig_epoch`): a request raced by an abort + re-migration
        /// must not be served against the successor migration's state.
        epoch: u64,
    },
}

/// Why a network flow exists (completion routing).
#[derive(Debug)]
pub(crate) enum FlowCtx {
    /// Iterative memory round or first pass.
    MemRound { vm: VmIdx },
    /// Final stop-and-copy memory flush.
    MemStop { vm: VmIdx },
    /// Background memory pull of a post-copy memory migration.
    MemPostPull { vm: VmIdx },
    /// A batch of pushed chunks with versions captured at send time.
    /// One flow + one completion event per batch; the manifest delivers
    /// per-chunk completions in chunk order on arrival.
    PushBatch {
        vm: VmIdx,
        chunks: Vec<(ChunkId, u64)>,
        slot: u32,
        /// Issuing migration generation (stale batches are dropped).
        epoch: u64,
    },
    /// A batch of pulled chunks (background prefetch or on-demand),
    /// with the same one-flow-per-batch manifest scheme as `PushBatch`.
    PullBatch {
        vm: VmIdx,
        chunks: Vec<(ChunkId, u64)>,
        background: bool,
        /// Issuing migration generation (stale batches are dropped).
        epoch: u64,
    },
    /// Mirrored write: `op` is the guest op gated on it (throttled
    /// writes), or `None` for write-back-driven mirroring.
    MirrorWrite {
        vm: VmIdx,
        op: Option<OpId>,
        chunks: Vec<(ChunkId, u64)>,
    },
    /// Repository chunk fetch for op `op` (None: background prefetch).
    RepoFetch {
        vm: VmIdx,
        node: u32,
        chunks: Vec<ChunkId>,
        op: Option<OpId>,
        replica: NodeId,
    },
    /// One stripe leg of a PVFS op.
    PvfsLeg {
        op: OpId,
        server: NodeId,
        bytes: u64,
        write: bool,
    },
    /// Application message (CM1 halo).
    Halo { op: OpId },
}

/// Why a disk request exists.
#[derive(Debug)]
pub(crate) enum DiskCtx {
    /// Part of a VM I/O op (cache miss read, or throttled write).
    VmOp { op: OpId },
    /// Background write-back of a dirty page-cache chunk.
    Writeback { vm: VmIdx, chunk: ChunkId },
    /// Source-side read of a push batch; flow starts when it completes.
    /// Versions are zero placeholders until the read finishes (captured
    /// at send time, in place — no per-stage manifest rebuild).
    PushRead {
        vm: VmIdx,
        chunks: Vec<(ChunkId, u64)>,
        slot: u32,
        /// Issuing migration generation. Aborts cancel a migration's
        /// *flows* but cannot cancel in-flight disk requests; a read
        /// completing after its migration died (and possibly after a new
        /// one started for the same VM) must be dropped, not attributed
        /// to the successor's pipeline counters.
        epoch: u64,
    },
    /// Source-side read serving a pull request; flow follows.
    PullRead {
        vm: VmIdx,
        chunks: Vec<ChunkId>,
        background: bool,
        /// Issuing migration generation (stale reads are dropped).
        epoch: u64,
    },
    /// Replica-side read serving a repository fetch; flow follows.
    RepoRead {
        vm: VmIdx,
        node: u32,
        chunks: Vec<ChunkId>,
        op: Option<OpId>,
        replica: NodeId,
    },
    /// Ingest of network-received bytes to the local disk (host-cache
    /// drain); non-blocking for the pipelines.
    Ingest { node: u32 },
    /// PVFS server-side disk work for one stripe leg.
    PvfsServer {
        op: OpId,
        write: bool,
        bytes: u64,
        server: NodeId,
    },
}

/// Same routing for the cache lanes (they only ever serve VM ops).
#[derive(Debug)]
pub(crate) struct CacheCtx {
    pub op: OpId,
}

/// An in-flight VM operation (one driver Action).
#[derive(Debug)]
pub(crate) struct OpRt {
    pub vm: VmIdx,
    pub token: ActionToken,
    pub kind: OpKind,
    /// Outstanding parts; the op completes when this reaches zero.
    pub parts: u32,
    pub issued: SimTime,
    pub bytes: u64,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum OpKind {
    Read,
    Write,
    Fsync,
    NetSend,
}

impl From<IoKind> for OpKind {
    fn from(k: IoKind) -> Self {
        match k {
            IoKind::Read => OpKind::Read,
            IoKind::Write => OpKind::Write,
        }
    }
}

/// Per-node physical state.
pub(crate) struct NodeRt {
    /// True once a crash fault took the node down (permanent).
    pub crashed: bool,
    pub disk: SharedResource,
    pub cache_rd: SharedResource,
    pub cache_wr: SharedResource,
    /// Bytes received from the network awaiting drain to disk.
    pub ingest_backlog: u64,
    pub ingest_inflight: u32,
    /// Scheduled wake bookkeeping (event id per resource).
    pub disk_wake: Option<(lsm_simcore::EventId, SimTime)>,
    pub cache_rd_wake: Option<(lsm_simcore::EventId, SimTime)>,
    pub cache_wr_wake: Option<(lsm_simcore::EventId, SimTime)>,
    pub disk_ctx: HashMap<ReqId, DiskCtx>,
    pub cache_rd_ctx: HashMap<ReqId, CacheCtx>,
    pub cache_wr_ctx: HashMap<ReqId, CacheCtx>,
}

/// Virtual-progress compute timer (stretchable by pause / CPU steal).
#[derive(Debug)]
pub(crate) struct ComputeRt {
    pub token: ActionToken,
    /// Nominal seconds of work left at `last`.
    pub remaining: f64,
    pub last: SimTime,
    /// Progress rate: 1.0 normal, <1 under migration steal, 0 paused.
    pub factor: f64,
    pub ev: Option<lsm_simcore::EventId>,
}

/// Migration lifecycle phase.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum MigPhase {
    /// Memory rounds + strategy push phase in progress.
    Active,
    /// Memory wants to stop but the block/bulk stream has not converged
    /// (precopy/mirror gating); extra engine-driven rounds run.
    Linger,
    /// VM paused; final memory flush in flight.
    StopAndCopy,
    /// Stop flush done; draining in-flight pushes before handoff.
    SyncDrain,
    /// Control at destination; destination pulling remaining chunks.
    PullPhase,
    /// Done.
    Complete,
    /// Aborted by a fault or deadline: the job is `Failed`, the state is
    /// kept only for partial-progress reporting. Terminal like
    /// `Complete` — no event handler advances an aborted migration.
    Aborted,
}

/// Per-migration runtime state.
pub(crate) struct MigrationRt {
    pub strategy: StrategyKind,
    pub dest: u32,
    pub source: u32,
    pub phase: MigPhase,
    pub mem: PrecopyMemory,
    /// Post-copy memory migration state (memory-strategy ablation);
    /// `Some` replaces the pre-copy rounds entirely.
    pub postcopy_mem: Option<lsm_hypervisor::PostcopyMemory>,
    pub round_started: SimTime,
    pub round_bytes: u64,
    /// Memory dirtied by I/O (guest page cache) since round start.
    pub io_dirty_accum: f64,
    /// Engine-driven linger rounds performed (bounded).
    pub linger_rounds: u32,
    /// Deferred stop-and-copy bytes from the memory machine.
    pub pending_stop_bytes: u64,
    /// Strategy state.
    pub hybrid_src: Option<HybridSource>,
    pub hybrid_dst: Option<HybridDest>,
    pub precopy_src: Option<PrecopySource>,
    pub mirror_src: Option<MirrorSource>,
    /// Push pipeline slots currently busy (reading or flowing).
    pub push_slots_busy: u32,
    /// Background pull slots currently busy.
    pub pull_slots_busy: u32,
    /// Pull *requests* in the pipeline (background + on-demand batches),
    /// counted from request send to batch arrival.
    pub pulls_inflight: u32,
    /// The source-side physical store, frozen at control transfer and
    /// kept while the destination still pulls from it.
    pub source_store: Option<lsm_blockdev::ChunkStore>,
    /// Chunks force-flushed during the stop-and-copy (forced convergence
    /// of precopy/mirror), applied at the destination when the final
    /// memory flush lands.
    pub final_chunks: Vec<ChunkId>,
    /// Reads waiting for a specific chunk to be pulled.
    pub pull_waiters: HashMap<ChunkId, Vec<OpId>>,
    /// Synchronous mirror flows currently in flight (mirror gating).
    pub mirror_flows_inflight: u32,
    /// Whether TRANSFER_IO_CONTROL has been sent (guards re-handoff).
    pub handoff_sent: bool,
    /// End of the current transfer stall, if one is in force: the push
    /// and pull pipelines initiate nothing (and the remaining-set
    /// handoff waits) until the stall clears.
    pub stalled_until: Option<SimTime>,
    /// On-demand pull chunks deferred because the stall hit between the
    /// guest read and the request send; re-requested (one batch, with
    /// their reads still parked as pull waiters) when the stall clears.
    pub stalled_ondemand: Vec<ChunkId>,
    /// Metrics.
    pub requested_at: SimTime,
    pub control_at: Option<SimTime>,
    pub completed_at: Option<SimTime>,
    pub mem_rounds: u32,
    pub throttled: bool,
    pub pushed_chunks: u64,
    pub pulled_chunks: u64,
    pub ondemand_chunks: u64,
    pub consistent: Option<bool>,
    pub downtime_before: SimDuration,
    pub downtime: SimDuration,
    /// Auto-converge throttle step currently applied to the guest
    /// (0 = unthrottled; released at switchover and on teardown).
    pub throttle_step: u32,
    /// Consecutive hot memory rounds seen by the auto-converge trigger
    /// (reset by any cool round or by a throttle step).
    pub converge_hot_rounds: u32,
    /// Switchovers deferred by the hard downtime limit this attempt.
    pub downtime_deferrals: u32,
    /// The current memory round is a downtime-deferral round: when its
    /// flow lands, the stop is retried instead of consulting the
    /// pre-copy memory machine (which already decided to stop).
    pub downtime_round: bool,
    /// Multifd memory-copy shards still in flight for the current
    /// round/stop flush (1 outside `[qos]` multifd runs); the round
    /// completes when the last shard lands.
    pub mem_streams_inflight: u32,
    /// SLA accounting: throughput-weighted seconds the guest ran
    /// degraded while this migration was live (∫ degrade_loss dt).
    pub degraded_secs: f64,
    /// When `degrade_loss` last changed (integration mark).
    pub degrade_mark: SimTime,
    /// The guest's current throughput loss fraction attributed to this
    /// migration: `1 − compute factor` while live and running, 0 while
    /// paused (that time is downtime, not degradation) or terminal.
    pub degrade_loss: f64,
    /// Timestamped lifecycle milestones for the report.
    pub timeline: Vec<(SimTime, crate::engine::report::Milestone)>,
}

impl MigrationRt {
    /// Chunks the destination still needs: exact during the pull phase,
    /// the strategy source's remaining set before the handoff.
    pub fn chunks_remaining(&self) -> u64 {
        if let Some(dst) = self.hybrid_dst.as_ref() {
            return dst.remaining_count() as u64;
        }
        if let Some(src) = self.hybrid_src.as_ref() {
            return src.remaining_count() as u64;
        }
        if let Some(src) = self.precopy_src.as_ref() {
            return src.remaining() as u64;
        }
        if let Some(src) = self.mirror_src.as_ref() {
            return src.remaining() as u64;
        }
        0
    }

    /// Downtime attributable to this migration so far. Terminal
    /// migrations (completed *or* aborted) report the downtime stamped
    /// at their end — an aborted attempt must not keep absorbing
    /// downtime a later migration of the same VM incurs.
    pub fn downtime_so_far(&self, vm: &Vm) -> SimDuration {
        if self.completed_at.is_some() || self.phase == MigPhase::Aborted {
            self.downtime
        } else {
            vm.total_downtime() - self.downtime_before
        }
    }
}

/// Per-VM runtime state.
pub(crate) struct VmRt {
    pub vm: Vm,
    /// True once the VM's host crashed under it: the guest is gone, its
    /// driver never runs again, completions addressed to it are dropped.
    pub crashed: bool,
    pub strategy: StrategyKind,
    pub driver: Option<Box<dyn Workload>>,
    pub started: bool,
    pub finished_at: Option<SimTime>,
    /// Manager-level (flushed) disk state.
    pub disk: VirtualDisk,
    /// Guest page cache (travels with the VM's memory).
    pub cache: PageCache,
    /// Physical chunk store at the current host.
    pub store: lsm_blockdev::ChunkStore,
    /// Physical chunk store building up at a migration destination.
    pub dest_store: Option<lsm_blockdev::ChunkStore>,
    /// Outstanding ops by token.
    pub ops: HashMap<ActionToken, OpId>,
    /// Current compute burst (at most one per VM).
    pub compute: Option<ComputeRt>,
    /// Completions held while the VM is paused.
    pub held_completions: VecDeque<ActionToken>,
    /// Workload group (CM1) and rank.
    pub group: Option<(u32, u32)>,
    /// Active migration, if any.
    pub migration: Option<MigrationRt>,
    /// Migration generation counter: bumped every time a fresh
    /// [`MigrationRt`] is installed. Transfer contexts (disk reads,
    /// batch flows, pull requests) carry the epoch they were issued
    /// under; completions with a stale epoch are dropped instead of
    /// mutating the successor migration's pipeline state.
    pub mig_epoch: u64,
    /// Background write-back requests in flight.
    pub wb_inflight: u32,
    /// Chunks the periodic dirty-expiry sweep still wants flushed this
    /// round (kupdate credit).
    pub kupdate_credit: u32,
    /// Fsync ops waiting for a full cache drain.
    pub fsync_waiters: Vec<OpId>,
    /// Accumulated I/O metrics.
    pub read_bytes: u64,
    pub write_bytes: u64,
    /// I/O-path breakdown counters (cache behaviour observability).
    pub reads_hit_bytes: u64,
    pub reads_miss_bytes: u64,
    pub writes_buffered_bytes: u64,
    pub writes_throttled_bytes: u64,
    pub reads_pull_blocked: u64,
    pub read_busy: SimDuration,
    pub write_busy: SimDuration,
    /// File offset base for PVFS planning (vm-disk offsets are used
    /// directly as file offsets).
    pub pvfs_file_base: u64,
    /// Cumulative count of manager-level writes landing on an
    /// already-modified chunk (the *overwrite* counter — the telemetry
    /// tick turns its delta into the windowed re-write rate, the
    /// paper's threshold signal).
    pub rewrite_chunk_writes: u64,
    /// I/O telemetry snapshot: when the last sample was taken, and the
    /// cumulative counters at that instant (the orchestrator's
    /// telemetry tick turns the deltas into windowed rates).
    pub tele_last_at: SimTime,
    pub tele_last_write: u64,
    pub tele_last_read: u64,
    /// ModifiedSet size at the last sample (dirty-set growth baseline).
    pub tele_last_modified: u32,
    /// Overwrite counter at the last sample.
    pub tele_last_rewrite: u64,
    /// Windowed write/read rates, bytes/second (what the telemetry
    /// planners read).
    pub tele_write_rate: f64,
    pub tele_read_rate: f64,
    /// Windowed dirty-set growth, bytes/second (newly modified chunks ×
    /// chunk size).
    pub tele_dirty_rate: f64,
    /// Windowed overwrite rate, bytes/second (writes to already-modified
    /// chunks × chunk size).
    pub tele_rewrite_rate: f64,
    /// Combined read+write busy time at the last sample (the I/O
    /// pressure baseline).
    pub tele_last_busy: SimDuration,
    /// Windowed I/O pressure: fraction of the last window this VM had
    /// I/O in flight (Δ(read_busy + write_busy) / window) — the
    /// CPU-proxy signal the autonomic overload classifier sums per
    /// node.
    pub tele_pressure: f64,
    /// True once a telemetry tick has sampled this VM. Until then the
    /// windowed rates are meaningless zeros, and a planner decision
    /// samples the cumulative counters on demand instead (a hot writer
    /// admitted before the first window must not be misread as idle).
    pub tele_sampled: bool,
}

/// Workload group (barrier domain) state.
pub(crate) struct GroupRt {
    pub members: Vec<VmIdx>,
    /// Tokens waiting at the current barrier, per member slot.
    pub waiting: Vec<Option<ActionToken>>,
    pub arrived: u32,
    /// Completed barrier episodes (diagnostics).
    pub episodes: u64,
}
