//! `lsm` — command-line driver for the HPDC'12 reproduction experiments.
//!
//! ```text
//! lsm fig3 [--quick] [--panel time|traffic|throughput] [--csv]
//! lsm fig4 [--quick] [--panel time|traffic|degradation] [--csv]
//! lsm fig5 [--quick] [--panel time|traffic|slowdown] [--csv]
//! lsm ablate <threshold|priority|window> [--quick] [--csv]
//! lsm strategies
//! lsm demo [--strategy <name>]
//! ```

use lsm_core::policy::StrategyKind;
use lsm_experiments::{ablations, fig3, fig4, fig5, Scale};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let quick = args.iter().any(|a| a == "--quick");
    let csv = args.iter().any(|a| a == "--csv");
    let scale = if quick { Scale::Quick } else { Scale::Paper };
    let panel = flag_value(&args, "--panel");

    match cmd.as_str() {
        "fig3" => {
            let r = fig3::run_fig3(scale);
            let tables = match panel.as_deref() {
                Some("time") => vec![r.table_time()],
                Some("traffic") => vec![r.table_traffic()],
                Some("throughput") => vec![r.table_throughput()],
                _ => vec![r.table_time(), r.table_traffic(), r.table_throughput()],
            };
            emit(&tables, csv);
        }
        "fig4" => {
            let r = fig4::run_fig4(scale);
            let tables = match panel.as_deref() {
                Some("time") => vec![r.table_time()],
                Some("traffic") => vec![r.table_traffic()],
                Some("degradation") => vec![r.table_degradation()],
                _ => vec![r.table_time(), r.table_traffic(), r.table_degradation()],
            };
            emit(&tables, csv);
        }
        "fig5" => {
            let r = fig5::run_fig5(scale);
            let tables = match panel.as_deref() {
                Some("time") => vec![r.table_time()],
                Some("traffic") => vec![r.table_traffic()],
                Some("slowdown") => vec![r.table_slowdown()],
                _ => vec![r.table_time(), r.table_traffic(), r.table_slowdown()],
            };
            emit(&tables, csv);
        }
        "ablate" => {
            let Some(which) = args.get(1) else {
                eprintln!("usage: lsm ablate <threshold|priority|window|memstrategy> [--quick]");
                return ExitCode::FAILURE;
            };
            let t = match which.as_str() {
                "threshold" => {
                    ablations::threshold_table(&ablations::run_threshold_ablation(scale))
                }
                "priority" => ablations::priority_table(&ablations::run_priority_ablation(scale)),
                "window" => ablations::window_table(&ablations::run_window_ablation(scale)),
                "memstrategy" => {
                    ablations::memstrategy_table(&ablations::run_memstrategy_ablation(scale))
                }
                other => {
                    eprintln!("unknown ablation: {other}");
                    return ExitCode::FAILURE;
                }
            };
            emit(&[t], csv);
        }
        "strategies" => {
            println!("Storage transfer strategies (paper Table 1):");
            for s in StrategyKind::ALL {
                println!(
                    "  {:<14} ends after control transfer: {:<5}  local storage: {}",
                    s.label(),
                    s.ends_after_control_transfer(),
                    s.uses_local_storage()
                );
            }
        }
        "demo" => {
            let strategy = flag_value(&args, "--strategy")
                .and_then(|s| parse_strategy(&s))
                .unwrap_or(StrategyKind::Hybrid);
            demo(strategy);
        }
        other => {
            eprintln!("unknown command: {other}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

const USAGE: &str =
    "usage: lsm <fig3|fig4|fig5|ablate|strategies|demo> [--quick] [--panel <p>] [--csv]";

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse_strategy(s: &str) -> Option<StrategyKind> {
    StrategyKind::ALL
        .into_iter()
        .find(|k| k.label() == s || format!("{k:?}").eq_ignore_ascii_case(s))
}

fn emit(tables: &[lsm_experiments::table::Table], csv: bool) {
    for t in tables {
        if csv {
            print!("{}", t.to_csv());
        } else {
            println!("{}", t.render());
        }
    }
}

/// A narrated single-migration run (the quickstart scenario).
fn demo(strategy: StrategyKind) {
    use lsm_experiments::scenario::{run_scenario, ScenarioSpec};
    use lsm_workloads::WorkloadSpec;

    println!(
        "live-migrating one AsyncWR VM with `{}`...",
        strategy.label()
    );
    let spec = ScenarioSpec::single_migration(strategy, WorkloadSpec::async_wr_short(), 20.0)
        .with_horizon(400.0);
    let r = run_scenario(&spec);
    let m = r.the_migration();
    println!("  requested at        : {:.1}s", m.requested_at.as_secs_f64());
    if let Some(t) = m.control_at {
        println!("  control transferred : {:.1}s", t.as_secs_f64());
    }
    if let Some(t) = m.completed_at {
        println!("  source relinquished : {:.1}s", t.as_secs_f64());
    }
    println!(
        "  migration time      : {:.1}s",
        m.migration_time.map(|d| d.as_secs_f64()).unwrap_or(f64::NAN)
    );
    println!(
        "  downtime            : {:.0}ms",
        m.downtime.as_secs_f64() * 1e3
    );
    println!("  memory rounds       : {}", m.mem_rounds);
    println!(
        "  chunks pushed/pulled: {}/{}",
        m.pushed_chunks, m.pulled_chunks
    );
    println!("  consistent          : {:?}", m.consistent);
    println!(
        "  total traffic       : {}",
        lsm_simcore::units::fmt_bytes(r.total_traffic)
    );
}
