//! Property test: arbitrary scenarios survive TOML and JSON round-trips
//! bit-exactly (including float fields), and parsing rejects garbage
//! with errors rather than panics.

use lsm_core::config::ClusterConfig;
use lsm_core::planner::{OrchestratorConfig, PlannerKind, RequestIntent};
use lsm_core::policy::StrategyKind;
use lsm_core::{FaultKind, QosConfig, ResilienceConfig, RetryOn, RetryPolicy};
use lsm_experiments::scenario::{
    CancelSpec, FaultSpec, MigrationSpec, RequestSpec, ScenarioSpec, VmSpec,
};
use lsm_workloads::{AsyncWrParams, IorParams, WorkloadSpec};
use proptest::prelude::*;

fn orchestrator_strategy() -> impl Strategy<Value = OrchestratorConfig> {
    (
        (prop::option::of(1u32..16), 0u8..3, 0.5f64..30.0),
        (0.01f64..0.5, 0.001f64..0.01, 0.01f64..0.5),
        (0.0f64..10.0, 0.0f64..16.0, 1.0f64..1.0e7, 1u32..12),
        0.0f64..20.0,
    )
        .prop_map(
            |(
                (cap, planner, window),
                (w_hi, w_lo, r_hi),
                (bytes_w, ondemand, nonconverge, retry),
                sla_w,
            )| OrchestratorConfig {
                max_concurrent: cap,
                planner: match planner {
                    0 => PlannerKind::Fixed,
                    1 => PlannerKind::Adaptive,
                    _ => PlannerKind::Cost,
                },
                telemetry_window_secs: window,
                adaptive_write_hi_frac: w_hi,
                adaptive_write_lo_frac: w_lo,
                adaptive_read_hi_frac: r_hi,
                cost_bytes_weight: bytes_w,
                cost_ondemand_penalty: ondemand,
                cost_nonconverge_penalty_secs: nonconverge,
                cost_sla_weight: sla_w,
                placement_retry_limit: retry,
            },
        )
}

fn qos_strategy() -> impl Strategy<Value = QosConfig> {
    (
        prop::option::of(1.0f64..200.0),
        1u32..=16,
        0.05f64..1.0,
        0.05f64..1.0,
        0.0f64..0.9,
    )
        .prop_map(
            |(cap, streams, mem_ratio, storage_ratio, cpu_frac)| QosConfig {
                bandwidth_cap_mb: cap,
                streams,
                compress_mem_ratio: mem_ratio,
                compress_storage_ratio: storage_ratio,
                compress_cpu_frac: cpu_frac,
            },
        )
}

fn request_strategy() -> impl Strategy<Value = RequestSpec> {
    (0.0f64..500.0, prop::bool::ANY, 0u32..8).prop_map(|(at, evac, idx)| RequestSpec {
        at_secs: at,
        intent: if evac {
            RequestIntent::Evacuate { node: idx }
        } else {
            RequestIntent::Rebalance { group: idx }
        },
    })
}

fn fault_strategy() -> impl Strategy<Value = FaultSpec> {
    (0.0f64..100.0, 0u8..4, 0u32..8, 0.01f64..1.0).prop_map(|(at, kind, node, x)| FaultSpec {
        at_secs: at,
        kind: match kind {
            0 => FaultKind::LinkDegrade { node, factor: x },
            1 => FaultKind::LinkRestore { node },
            2 => FaultKind::NodeCrash { node },
            _ => FaultKind::TransferStall {
                vm: node,
                secs: x * 10.0,
            },
        },
    })
}

fn resilience_strategy() -> impl Strategy<Value = ResilienceConfig> {
    (
        (
            1u32..6,
            0.1f64..20.0,
            1.0f64..120.0,
            prop::bool::ANY,
            prop::bool::ANY,
            prop::bool::ANY,
        ),
        (0.1f64..2.0, 1u32..8, 0.05f64..0.95, 1u32..8),
        (prop::option::of(1.0f64..5000.0), 0u32..5),
    )
        .prop_map(
            |(
                (max_attempts, backoff, cap_extra, dest_crash, stall, deadline),
                (frac, patience, step, max_steps),
                (downtime_limit_ms, downtime_extra_rounds),
            )| ResilienceConfig {
                retry: RetryPolicy {
                    max_attempts,
                    backoff_secs: backoff,
                    backoff_cap_secs: backoff + cap_extra,
                    retry_on: RetryOn {
                        dest_crash,
                        stall,
                        deadline,
                    },
                },
                converge_frac: frac,
                converge_patience: patience,
                converge_step: step,
                converge_max_steps: max_steps,
                downtime_limit_ms,
                downtime_extra_rounds,
            },
        )
}

fn cancel_strategy() -> impl Strategy<Value = CancelSpec> {
    (0.0f64..500.0, 0u32..8).prop_map(|(at, job)| CancelSpec { at_secs: at, job })
}

fn strategy_strategy() -> impl Strategy<Value = StrategyKind> {
    prop_oneof![
        Just(StrategyKind::Hybrid),
        Just(StrategyKind::Precopy),
        Just(StrategyKind::Mirror),
        Just(StrategyKind::Postcopy),
        Just(StrategyKind::SharedFs),
    ]
}

fn workload_strategy() -> impl Strategy<Value = WorkloadSpec> {
    prop_oneof![
        (0u64..64, 1u64..64, 1u64..8, 0.0f64..0.1).prop_map(|(off, mb, block, think)| {
            WorkloadSpec::SeqWrite {
                offset: off << 20,
                total: mb << 20,
                block: block << 20,
                think_secs: think,
            }
        }),
        (1u64..2048, 1u64..512, 0.0f64..0.95, 0u64..9999).prop_map(
            |(blocks, count, theta, seed)| WorkloadSpec::HotspotWrite {
                offset: 0,
                region_blocks: blocks,
                block: 256 * 1024,
                count,
                theta,
                think_secs: 0.004,
                seed,
            }
        ),
        (1u64..64, 1u32..8).prop_map(|(mb, iters)| {
            WorkloadSpec::Ior(IorParams {
                file_size: mb << 20,
                block_size: 256 * 1024,
                iterations: iters,
                file_offset: 0,
                fsync_per_phase: mb % 2 == 0,
            })
        }),
        (1u32..200).prop_map(|iters| {
            WorkloadSpec::AsyncWr(AsyncWrParams {
                iterations: iters,
                ..Default::default()
            })
        }),
        (1u32..10, 0.01f64..5.0).prop_map(|(bursts, secs)| WorkloadSpec::Idle {
            bursts,
            burst_secs: secs,
        }),
    ]
}

fn scenario_strategy() -> impl Strategy<Value = ScenarioSpec> {
    (
        strategy_strategy(),
        prop::collection::vec(
            (
                0u32..8,
                workload_strategy(),
                prop::option::of(strategy_strategy()),
            ),
            1..5,
        ),
        prop::collection::vec(
            (
                0u32..8,
                0.1f64..100.0,
                prop::option::of(0.5f64..60.0),
                prop::option::of(prop::bool::ANY),
            ),
            0..4,
        ),
        1.0f64..2000.0,
        prop::bool::ANY,
        prop::option::of(0u64..99),
        (
            prop::option::of(prop::collection::vec(fault_strategy(), 0..5)),
            prop::option::of(orchestrator_strategy()),
            prop::option::of(prop::collection::vec(request_strategy(), 0..4)),
            prop::option::of(resilience_strategy()),
            prop::option::of(prop::collection::vec(cancel_strategy(), 0..3)),
            prop::option::of(qos_strategy()),
        ),
    )
        .prop_map(
            |(
                strategy,
                vms,
                migs,
                horizon,
                default_cluster,
                name,
                (faults, orch, requests, resilience, cancellations, qos),
            )| {
                let nvms = vms.len() as u32;
                ScenarioSpec {
                    name: name.map(|n| format!("scenario-{n}")),
                    cluster: if default_cluster {
                        None
                    } else {
                        Some(ClusterConfig::graphene(8))
                    },
                    orchestrator: orch,
                    autonomic: None,
                    resilience,
                    qos,
                    strategy,
                    grouped: false,
                    vms: vms
                        .into_iter()
                        .map(|(node, workload, strategy)| VmSpec {
                            node,
                            workload,
                            strategy,
                            start_secs: None,
                        })
                        .collect(),
                    migrations: migs
                        .into_iter()
                        .enumerate()
                        .map(|(i, (dest, at, deadline, adaptive))| MigrationSpec {
                            vm: i as u32 % nvms,
                            dest,
                            at_secs: at,
                            deadline_secs: deadline,
                            adaptive,
                        })
                        .collect(),
                    requests,
                    faults,
                    cancellations,
                    horizon_secs: horizon,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn toml_roundtrip_is_exact(spec in scenario_strategy()) {
        let text = spec.to_toml().expect("every spec serializes");
        let back = ScenarioSpec::from_toml(&text)
            .map_err(|e| TestCaseError::fail(format!("reparse failed: {e}\n{text}")))?;
        prop_assert_eq!(&back, &spec, "TOML document:\n{}", text);
    }

    #[test]
    fn json_roundtrip_is_exact(spec in scenario_strategy()) {
        let text = spec.to_json().expect("every spec serializes");
        let back = ScenarioSpec::from_json(&text)
            .map_err(|e| TestCaseError::fail(format!("reparse failed: {e}\n{text}")))?;
        prop_assert_eq!(back, spec);
    }

    #[test]
    fn toml_to_json_to_toml_is_exact(spec in scenario_strategy()) {
        let via = ScenarioSpec::from_json(&spec.to_json().unwrap()).unwrap();
        let text = via.to_toml().unwrap();
        prop_assert_eq!(ScenarioSpec::from_toml(&text).unwrap(), spec);
    }
}

/// The `[orchestrator]` section and the `[[requests]]` plan are held to
/// the same strictness as every other section: typoed knobs, unknown
/// planners and malformed intents fail loudly.
#[test]
fn orchestrator_sections_reject_unknown_fields() {
    let base = "strategy = \"our-approach\"\ngrouped = false\nhorizon_secs = 1.0\nvms = []\nmigrations = []\n";
    let toml = format!("{base}[orchestrator]\nmax_concurent = 4\n");
    let err = ScenarioSpec::from_toml(&toml).unwrap_err().to_string();
    assert!(
        err.contains("unknown OrchestratorConfig field `max_concurent`"),
        "{err}"
    );
    let toml = format!("{base}[orchestrator]\nplanner = \"clever\"\n");
    let err = ScenarioSpec::from_toml(&toml).unwrap_err().to_string();
    assert!(err.contains("unknown planner `clever`"), "{err}");
    let toml = format!("{base}[[requests]]\nat_secs = 1.0\n[requests.intent.Evacuate]\nnod = 1\n");
    let err = ScenarioSpec::from_toml(&toml).unwrap_err().to_string();
    assert!(err.contains("unknown field `nod`"), "{err}");
    let toml = format!("{base}[[requests]]\nat_secs = 1.0\nintent = \"Decommission\"\n");
    let err = ScenarioSpec::from_toml(&toml).unwrap_err().to_string();
    assert!(err.contains("unknown RequestIntent variant"), "{err}");
    // A partial [orchestrator] section fills the defaults.
    let toml = format!("{base}[orchestrator]\nmax_concurrent = 4\nplanner = \"adaptive\"\n");
    let spec = ScenarioSpec::from_toml(&toml).expect("partial section parses");
    let orch = spec.orchestrator.expect("present");
    assert_eq!(orch.max_concurrent, Some(4));
    assert_eq!(orch.planner, PlannerKind::Adaptive);
    assert_eq!(
        orch.telemetry_window_secs,
        OrchestratorConfig::default().telemetry_window_secs
    );
}

/// The `[resilience]` section and the `[[cancellations]]` plan reject
/// typos loudly and fill defaults for omitted knobs, exactly like the
/// `[orchestrator]` section.
#[test]
fn resilience_sections_reject_unknown_fields() {
    let base = "strategy = \"our-approach\"\ngrouped = false\nhorizon_secs = 1.0\nvms = []\nmigrations = []\n";
    let toml = format!("{base}[resilience]\nconverge_fraq = 0.8\n");
    let err = ScenarioSpec::from_toml(&toml).unwrap_err().to_string();
    assert!(
        err.contains("unknown ResilienceConfig field `converge_fraq`"),
        "{err}"
    );
    let toml = format!("{base}[resilience.retry]\nmax_attemps = 4\n");
    let err = ScenarioSpec::from_toml(&toml).unwrap_err().to_string();
    assert!(
        err.contains("unknown RetryPolicy field `max_attemps`"),
        "{err}"
    );
    let toml = format!("{base}[resilience.retry.retry_on]\ndest_crashed = true\n");
    let err = ScenarioSpec::from_toml(&toml).unwrap_err().to_string();
    assert!(
        err.contains("unknown RetryOn field `dest_crashed`"),
        "{err}"
    );
    let toml = format!("{base}[[cancellations]]\nat_secs = 1.0\njobb = 0\n");
    let err = ScenarioSpec::from_toml(&toml).unwrap_err().to_string();
    assert!(err.contains("unknown field `jobb`"), "{err}");
    // A partial [resilience] section fills the defaults.
    let toml =
        format!("{base}[resilience]\nconverge_frac = 0.75\n[resilience.retry]\nmax_attempts = 5\n");
    let spec = ScenarioSpec::from_toml(&toml).expect("partial section parses");
    let res = spec.resilience.expect("present");
    assert_eq!(res.retry.max_attempts, 5);
    assert_eq!(res.converge_frac, 0.75);
    assert_eq!(
        res.retry.backoff_secs,
        ResilienceConfig::default().retry.backoff_secs
    );
    assert!(res.retry.retry_on.dest_crash && res.retry.retry_on.stall);
}

/// The `[qos]` section rejects typos loudly, fills defaults for
/// omitted knobs, and validates ranges at parse time — same contract
/// as `[orchestrator]` and `[resilience]`.
#[test]
fn qos_section_rejects_unknown_fields() {
    let base = "strategy = \"our-approach\"\ngrouped = false\nhorizon_secs = 1.0\nvms = []\nmigrations = []\n";
    let toml = format!("{base}[qos]\nbandwith_cap_mb = 100.0\n");
    let err = ScenarioSpec::from_toml(&toml).unwrap_err().to_string();
    assert!(
        err.contains("unknown QosConfig field `bandwith_cap_mb`"),
        "{err}"
    );
    let toml = format!("{base}[qos]\nstreems = 4\n");
    let err = ScenarioSpec::from_toml(&toml).unwrap_err().to_string();
    assert!(err.contains("unknown QosConfig field `streems`"), "{err}");
    // A partial [qos] section fills the defaults.
    let toml = format!("{base}[qos]\nbandwidth_cap_mb = 80.0\nstreams = 4\n");
    let spec = ScenarioSpec::from_toml(&toml).expect("partial section parses");
    let qos = spec.qos.expect("present");
    assert_eq!(qos.bandwidth_cap_mb, Some(80.0));
    assert_eq!(qos.streams, 4);
    assert_eq!(
        qos.compress_mem_ratio,
        QosConfig::default().compress_mem_ratio
    );
}

#[test]
fn garbage_input_is_an_error_not_a_panic() {
    for bad in [
        "",
        "strategy = 12",
        "vms = 3",
        "[[vms]]\nnode = \"zero\"",
        "strategy = \"NoSuchStrategy\"\ngrouped = false\nvms = []\nmigrations = []\nhorizon_secs = 1.0",
        "{ not toml at all",
    ] {
        assert!(ScenarioSpec::from_toml(bad).is_err(), "accepted: {bad:?}");
    }
    for bad in ["", "[1, 2", "{\"strategy\": 4}", "null"] {
        assert!(ScenarioSpec::from_json(bad).is_err(), "accepted: {bad:?}");
    }
}
