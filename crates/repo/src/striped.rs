//! BlobSeer-like striped, replicated chunk repository.

use lsm_blockdev::ChunkId;
use lsm_netsim::NodeId;
use serde::{Deserialize, Serialize};

/// Configuration of the striped repository.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RepoConfig {
    /// Nodes contributing storage to the repository (the paper aggregates
    /// part of every compute node's local disk, §4.2).
    pub storage_nodes: Vec<NodeId>,
    /// Number of replicas per chunk (BlobSeer replicates transparently).
    pub replication: usize,
    /// Chunk (stripe) size in bytes — 256 KB in the paper.
    pub chunk_size: u64,
}

impl RepoConfig {
    /// Repository over `n` nodes (ids `0..n`) with the given replication.
    pub fn over_nodes(n: u32, replication: usize, chunk_size: u64) -> Self {
        assert!(n > 0 && replication >= 1 && replication as u32 <= n);
        RepoConfig {
            storage_nodes: (0..n).map(NodeId).collect(),
            replication,
            chunk_size,
        }
    }
}

/// The striped repository: placement + load-aware replica selection.
#[derive(Clone, Debug)]
pub struct StripedRepo {
    cfg: RepoConfig,
    /// In-flight fetches per storage node (index into `cfg.storage_nodes`).
    load: Vec<u32>,
    /// Total fetches served per storage node, for balance reporting.
    served: Vec<u64>,
    /// Nodes marked down by a crash fault: replica selection skips them
    /// while at least one live replica exists.
    down: Vec<bool>,
}

impl StripedRepo {
    /// Build the repository.
    pub fn new(cfg: RepoConfig) -> Self {
        let n = cfg.storage_nodes.len();
        StripedRepo {
            cfg,
            load: vec![0; n],
            served: vec![0; n],
            down: vec![false; n],
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &RepoConfig {
        &self.cfg
    }

    /// The replica set of `chunk`: `replication` consecutive nodes starting
    /// from the chunk's home position (classic chained declustering, which
    /// is how BlobSeer spreads both placement and replica load).
    pub fn replicas(&self, chunk: ChunkId) -> impl Iterator<Item = NodeId> + '_ {
        let n = self.cfg.storage_nodes.len();
        let home = chunk.idx() % n;
        (0..self.cfg.replication).map(move |k| self.cfg.storage_nodes[(home + k) % n])
    }

    /// Begin a fetch of `chunk`: picks the least-loaded *live* replica
    /// (deterministic: ties go to the earliest replica in chain order),
    /// increments its in-flight load, and returns it. Replicas marked
    /// down by [`StripedRepo::set_down`] are skipped; if every replica
    /// of the chunk is down, selection falls back to the full replica
    /// set (the caller is expected to notice the returned node is down
    /// and degrade the read — the repository stays deterministic either
    /// way).
    pub fn begin_fetch(&mut self, chunk: ChunkId) -> NodeId {
        let n = self.cfg.storage_nodes.len();
        let home = chunk.idx() % n;
        let pick = |skip_down: bool, load: &[u32], down: &[bool]| -> Option<usize> {
            let mut best: Option<(u32, usize)> = None;
            for k in 0..self.cfg.replication {
                let slot = (home + k) % n;
                if skip_down && down[slot] {
                    continue;
                }
                if best.map(|(bl, _)| load[slot] < bl).unwrap_or(true) {
                    best = Some((load[slot], slot));
                }
            }
            best.map(|(_, s)| s)
        };
        let best_slot = pick(true, &self.load, &self.down)
            .or_else(|| pick(false, &self.load, &self.down))
            .expect("replication >= 1");
        self.load[best_slot] += 1;
        self.served[best_slot] += 1;
        self.cfg.storage_nodes[best_slot]
    }

    /// Mark a storage node down (crash fault) or back up. Down nodes are
    /// avoided by replica selection but keep their load/served counters.
    pub fn set_down(&mut self, node: NodeId, down: bool) {
        let slot = self.slot_of(node);
        self.down[slot] = down;
    }

    /// Whether a storage node is currently marked down.
    pub fn is_down(&self, node: NodeId) -> bool {
        self.down[self.slot_of(node)]
    }

    /// A fetch served by `node` finished.
    pub fn end_fetch(&mut self, node: NodeId) {
        let slot = self.slot_of(node);
        assert!(self.load[slot] > 0, "end_fetch without begin_fetch");
        self.load[slot] -= 1;
    }

    /// Current in-flight fetches on `node`.
    pub fn inflight(&self, node: NodeId) -> u32 {
        self.load[self.slot_of(node)]
    }

    /// Total fetches ever served by `node`.
    pub fn total_served(&self, node: NodeId) -> u64 {
        self.served[self.slot_of(node)]
    }

    /// Ratio of the busiest to the average node's served count — 1.0 is a
    /// perfectly balanced repository.
    pub fn imbalance(&self) -> f64 {
        let total: u64 = self.served.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let avg = total as f64 / self.served.len() as f64;
        let max = *self.served.iter().max().expect("nonempty") as f64;
        max / avg
    }

    fn slot_of(&self, node: NodeId) -> usize {
        self.cfg
            .storage_nodes
            .iter()
            .position(|&x| x == node)
            .expect("node not part of the repository")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repo(n: u32, r: usize) -> StripedRepo {
        StripedRepo::new(RepoConfig::over_nodes(n, r, 256 * 1024))
    }

    #[test]
    fn replicas_are_distinct_and_chained() {
        let r = repo(5, 3);
        let reps: Vec<_> = r.replicas(ChunkId(7)).collect();
        assert_eq!(reps, vec![NodeId(2), NodeId(3), NodeId(4)]);
        let reps: Vec<_> = r.replicas(ChunkId(4)).collect();
        assert_eq!(reps, vec![NodeId(4), NodeId(0), NodeId(1)]);
    }

    #[test]
    fn sequential_chunks_spread_over_nodes() {
        let mut r = repo(4, 1);
        let nodes: Vec<_> = (0..8).map(|i| r.begin_fetch(ChunkId(i))).collect();
        assert_eq!(
            nodes,
            [0, 1, 2, 3, 0, 1, 2, 3].map(NodeId).to_vec(),
            "round-robin striping"
        );
    }

    #[test]
    fn least_loaded_replica_wins() {
        let mut r = repo(3, 2);
        // Chunk 0's replicas are nodes 0 and 1.
        let first = r.begin_fetch(ChunkId(0));
        assert_eq!(first, NodeId(0));
        let second = r.begin_fetch(ChunkId(0));
        assert_eq!(second, NodeId(1), "load-aware selection avoids node 0");
        r.end_fetch(first);
        let third = r.begin_fetch(ChunkId(0));
        assert_eq!(third, NodeId(0), "load released");
    }

    #[test]
    fn load_accounting() {
        let mut r = repo(2, 1);
        let n = r.begin_fetch(ChunkId(0));
        assert_eq!(r.inflight(n), 1);
        r.end_fetch(n);
        assert_eq!(r.inflight(n), 0);
        assert_eq!(r.total_served(n), 1);
    }

    #[test]
    fn concurrent_reads_balance_well() {
        // 64 concurrent single-chunk fetches over 16 nodes with r=2 should
        // land within 2x of perfectly even.
        let mut r = repo(16, 2);
        for i in 0..64 {
            r.begin_fetch(ChunkId(i));
        }
        assert!(r.imbalance() <= 2.0, "imbalance {}", r.imbalance());
    }

    #[test]
    #[should_panic(expected = "end_fetch without begin_fetch")]
    fn unbalanced_end_fetch_panics() {
        let mut r = repo(2, 1);
        r.end_fetch(NodeId(0));
    }

    #[test]
    fn down_replicas_are_skipped_while_one_lives() {
        let mut r = repo(3, 2);
        // Chunk 0's replicas are nodes 0 and 1.
        r.set_down(NodeId(0), true);
        assert!(r.is_down(NodeId(0)));
        for _ in 0..3 {
            assert_eq!(r.begin_fetch(ChunkId(0)), NodeId(1), "live replica wins");
        }
        // Recovery: node 0 is preferred again once back up and less loaded.
        r.set_down(NodeId(0), false);
        assert_eq!(r.begin_fetch(ChunkId(0)), NodeId(0));
    }

    #[test]
    fn all_replicas_down_falls_back_deterministically() {
        let mut r = repo(3, 2);
        r.set_down(NodeId(0), true);
        r.set_down(NodeId(1), true);
        // Both replicas of chunk 0 are down: the chain-order fallback
        // still answers (callers degrade the read).
        let n = r.begin_fetch(ChunkId(0));
        assert_eq!(n, NodeId(0));
        assert!(r.is_down(n));
    }
}
