//! Storage transfer policies — the paper's Algorithms 1–4 and the three
//! transfer baselines, as pure state machines.
//!
//! Everything here is engine-free and unit-testable: the engine asks
//! "what next?" (`next_push`, `next_pull`) and reports events
//! (`on_write`, `push_started`, `pull_done`); the policies keep the
//! `RemainingSet` / `WriteCount` bookkeeping of §4.3.

use lsm_blockdev::{ChunkId, ChunkSet, DirtyTracker, WriteCounter};
use serde::Serialize;
use std::collections::BinaryHeap;

/// The five storage transfer strategies compared in the paper (Table 1).
///
/// Deserialization accepts the variant name (`"Hybrid"`) or the paper's
/// plot label (`"our-approach"`), case-insensitively.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize)]
pub enum StrategyKind {
    /// The paper's hybrid active push / prioritized prefetch (§4).
    Hybrid,
    /// QEMU-style incremental block migration alongside memory pre-copy.
    Precopy,
    /// Background bulk copy + synchronous write mirroring
    /// (Haselhorst et al.).
    Mirror,
    /// Passive until control transfer, then prioritized pull
    /// (pure I/O post-copy).
    Postcopy,
    /// No storage transfer: all I/O through the parallel file system.
    SharedFs,
}

impl StrategyKind {
    /// All strategies, in the paper's comparison order.
    pub const ALL: [StrategyKind; 5] = [
        StrategyKind::Hybrid,
        StrategyKind::Mirror,
        StrategyKind::Postcopy,
        StrategyKind::Precopy,
        StrategyKind::SharedFs,
    ];

    /// Label used in the paper's plots.
    pub fn label(self) -> &'static str {
        match self {
            StrategyKind::Hybrid => "our-approach",
            StrategyKind::Precopy => "precopy",
            StrategyKind::Mirror => "mirror",
            StrategyKind::Postcopy => "postcopy",
            StrategyKind::SharedFs => "pvfs-shared",
        }
    }

    /// Whether migration time extends past control transfer (the paper's
    /// metric definition in §5.2: for hybrid and postcopy the source is
    /// only relinquished once the destination pulled everything).
    pub fn ends_after_control_transfer(self) -> bool {
        matches!(self, StrategyKind::Hybrid | StrategyKind::Postcopy)
    }

    /// Whether VM I/O goes to local storage (vs. the parallel FS).
    pub fn uses_local_storage(self) -> bool {
        !matches!(self, StrategyKind::SharedFs)
    }
}

impl serde::Deserialize for StrategyKind {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        match v {
            serde::Value::Str(s) => s
                .parse::<StrategyKind>()
                .map_err(|e| serde::Error::new(e.to_string())),
            other => Err(serde::Error::new(format!(
                "expected strategy name string, found {}",
                other.kind()
            ))),
        }
    }
}

impl std::str::FromStr for StrategyKind {
    type Err = crate::error::EngineError;

    /// Parse either the paper's plot label (`our-approach`, `precopy`,
    /// `mirror`, `postcopy`, `pvfs-shared`) or the variant name, case
    /// insensitively. `hybrid` is accepted as an alias of
    /// `our-approach`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        StrategyKind::ALL
            .into_iter()
            .find(|k| k.label().eq_ignore_ascii_case(s) || format!("{k:?}").eq_ignore_ascii_case(s))
            .ok_or_else(|| crate::error::EngineError::UnknownStrategy {
                name: s.to_string(),
            })
    }
}

/// Source-side state of the hybrid scheme (Algorithms 1 and 2).
///
/// Also used (with the push phase disabled) by the `postcopy` baseline,
/// which the paper derives from the same implementation.
#[derive(Debug)]
pub struct HybridSource {
    /// Algorithm's `RemainingSet`: chunks the destination still needs.
    remaining: ChunkSet,
    /// Chunks eligible for (re-)pushing, a subset of `remaining`.
    queue: ChunkSet,
    /// Per-chunk write counts since migration start.
    wc: WriteCounter,
    /// Chunks currently in the push pipeline.
    inflight: ChunkSet,
    /// If false, the active push phase is disabled (postcopy mode).
    push_enabled: bool,
    /// Total push transmissions (for traffic assertions).
    pushes: u64,
}

impl HybridSource {
    /// Algorithm 1, MIGRATION_REQUEST: `RemainingSet ← ModifiedSet`,
    /// all write counts reset, background push armed.
    pub fn start(modified: &ChunkSet, threshold: u32, push_enabled: bool) -> Self {
        let n = modified.capacity();
        HybridSource {
            remaining: modified.clone(),
            queue: if push_enabled {
                modified.clone()
            } else {
                ChunkSet::new(n)
            },
            wc: WriteCounter::new(n, threshold),
            inflight: ChunkSet::new(n),
            push_enabled,
            pushes: 0,
        }
    }

    /// Algorithm 2, WRITE on the source: count the write and requeue the
    /// chunk for the destination.
    pub fn on_write(&mut self, c: ChunkId) {
        self.wc.record_write(c);
        self.remaining.insert(c);
        if self.push_enabled && self.wc.pushable(c) {
            self.queue.insert(c);
        }
    }

    /// Algorithm 1, BACKGROUND_PUSH body: next chunk with
    /// `WriteCount[c] < Threshold`, removed from the remaining set.
    /// Returns `None` when nothing is currently pushable (hot chunks stay
    /// behind for the prioritized prefetch).
    pub fn next_push(&mut self) -> Option<ChunkId> {
        while let Some(c) = self.queue.pop_first() {
            if self.remaining.contains(c) && self.wc.pushable(c) {
                self.remaining.remove(c);
                self.inflight.insert(c);
                self.pushes += 1;
                return Some(c);
            }
        }
        None
    }

    /// A pushed chunk left the pipeline (landed at the destination).
    pub fn push_done(&mut self, c: ChunkId) {
        self.inflight.remove(c);
    }

    /// A pushed chunk was *lost* in flight (severed transfer): it goes
    /// back to the remaining set — and, subject to the same `Threshold`,
    /// back to the push queue — so the pipeline resumes from the
    /// surviving manifest without re-sending anything already delivered.
    pub fn push_lost(&mut self, c: ChunkId) {
        if self.inflight.remove(c) {
            self.remaining.insert(c);
            if self.push_enabled && self.wc.pushable(c) {
                self.queue.insert(c);
            }
        }
    }

    /// True while pushed chunks are still in the pipeline.
    pub fn push_inflight(&self) -> bool {
        !self.inflight.is_empty()
    }

    /// SYNC / TRANSFER_IO_CONTROL: stop pushing and hand the destination
    /// the remaining set plus the write counts (Algorithm 3 parameters).
    pub fn handoff(&mut self) -> (ChunkSet, Vec<u32>) {
        self.queue.clear();
        self.push_enabled = false;
        (self.remaining.clone(), self.wc.snapshot())
    }

    /// Chunks the destination still needs right now.
    pub fn remaining_count(&self) -> u32 {
        self.remaining.count()
    }

    /// Total chunks handed to the push pipeline so far.
    pub fn total_pushes(&self) -> u64 {
        self.pushes
    }

    /// The write counter (ablation introspection).
    pub fn write_counter(&self) -> &WriteCounter {
        &self.wc
    }
}

/// Destination-side state of the hybrid scheme (Algorithms 3 and 4).
#[derive(Debug)]
pub struct HybridDest {
    /// Chunks still owed by the source.
    remaining: ChunkSet,
    /// Prefetch priority queue: `(write_count, chunk)` max-heap with
    /// deterministic low-id tie-breaking. Entries are validated lazily
    /// against `remaining` on pop.
    heap: BinaryHeap<(u32, std::cmp::Reverse<u32>)>,
    /// The handed-over write counts, kept so chunks lost in flight can
    /// be re-heaped under their original priority.
    counts: Vec<u32>,
    /// Chunks currently being pulled (background or on-demand).
    inflight: ChunkSet,
    /// If false, prefetch in arrival order instead of write-count order
    /// (the priority ablation).
    prioritized: bool,
    /// Pull statistics.
    background_pulls: u64,
    ondemand_pulls: u64,
}

impl HybridDest {
    /// Algorithm 3, TRANSFER_IO_CONTROL: receive the remaining set and the
    /// write counts, start BACKGROUND_PULL.
    pub fn start(remaining: ChunkSet, counts: &[u32], prioritized: bool) -> Self {
        let mut heap = BinaryHeap::with_capacity(remaining.count() as usize);
        for c in remaining.iter() {
            let wc = if prioritized { counts[c.idx()] } else { 0 };
            heap.push((wc, std::cmp::Reverse(c.0)));
        }
        let n = remaining.capacity();
        HybridDest {
            remaining,
            heap,
            counts: counts.to_vec(),
            inflight: ChunkSet::new(n),
            prioritized,
            background_pulls: 0,
            ondemand_pulls: 0,
        }
    }

    /// Algorithm 3, BACKGROUND_PULL body: highest write count first.
    pub fn next_pull(&mut self) -> Option<ChunkId> {
        while let Some((_, std::cmp::Reverse(raw))) = self.heap.pop() {
            let c = ChunkId(raw);
            if self.remaining.remove(c) {
                self.inflight.insert(c);
                self.background_pulls += 1;
                return Some(c);
            }
        }
        None
    }

    /// Algorithm 4, READ of a chunk the destination does not hold yet.
    /// Returns what the read must do.
    pub fn on_read(&mut self, c: ChunkId) -> ReadPath {
        if self.inflight.contains(c) {
            return ReadPath::WaitForPull;
        }
        if self.remaining.remove(c) {
            self.inflight.insert(c);
            self.ondemand_pulls += 1;
            return ReadPath::PullOnDemand;
        }
        ReadPath::Local
    }

    /// Algorithm 4 (write clause): a local write supersedes the source's
    /// copy — drop it from the remaining set. Returns true if an in-flight
    /// pull of this chunk should be cancelled by the engine.
    pub fn on_write(&mut self, c: ChunkId) -> bool {
        self.remaining.remove(c);
        self.inflight.remove(c)
    }

    /// A pull (background or on-demand) delivered chunk `c`.
    pub fn pull_done(&mut self, c: ChunkId) {
        self.inflight.remove(c);
    }

    /// An in-flight pull of `c` was lost (severed transfer): the chunk
    /// returns to the remaining set and re-enters the prefetch heap
    /// under its original write count, so the pull phase resumes from
    /// the surviving manifest. No-op if the chunk was not in flight
    /// (e.g. a local write superseded it first).
    pub fn pull_lost(&mut self, c: ChunkId) {
        if self.inflight.remove(c) {
            self.remaining.insert(c);
            let wc = if self.prioritized {
                self.counts[c.idx()]
            } else {
                0
            };
            self.heap.push((wc, std::cmp::Reverse(c.0)));
        }
    }

    /// True when the source is no longer needed: nothing remaining and
    /// nothing in flight — the migration-complete condition of §4.3.
    pub fn is_complete(&self) -> bool {
        self.remaining.is_empty() && self.inflight.is_empty()
    }

    /// Chunks not yet pulled.
    pub fn remaining_count(&self) -> u32 {
        self.remaining.count()
    }

    /// Background pull count so far.
    pub fn background_pulls(&self) -> u64 {
        self.background_pulls
    }

    /// On-demand (read-triggered) pull count so far.
    pub fn ondemand_pulls(&self) -> u64 {
        self.ondemand_pulls
    }

    /// Whether prefetch ordering uses write counts.
    pub fn prioritized(&self) -> bool {
        self.prioritized
    }
}

/// What a destination read must do for a given chunk (Algorithm 4).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReadPath {
    /// The chunk is already local (pulled, pushed, or freshly written).
    Local,
    /// A pull is in flight; wait for it.
    WaitForPull,
    /// Suspend background prefetch and pull this chunk with priority.
    PullOnDemand,
}

/// Source-side state of the `precopy` (incremental block migration)
/// baseline: a thin policy shell over [`DirtyTracker`].
#[derive(Debug)]
pub struct PrecopySource {
    tracker: DirtyTracker,
    inflight: u32,
}

impl PrecopySource {
    /// Start block migration over the locally allocated chunks.
    pub fn start(allocated: ChunkSet) -> Self {
        PrecopySource {
            tracker: DirtyTracker::start(allocated),
            inflight: 0,
        }
    }

    /// Guest wrote chunk `c` during migration.
    pub fn on_write(&mut self, c: ChunkId) {
        self.tracker.record_write(c);
    }

    /// Next chunk for the block stream.
    pub fn next_send(&mut self) -> Option<ChunkId> {
        let c = self.tracker.next_chunk();
        if c.is_some() {
            self.inflight += 1;
        }
        c
    }

    /// A sent chunk landed at the destination.
    pub fn send_done(&mut self) {
        debug_assert!(self.inflight > 0);
        self.inflight -= 1;
    }

    /// A sent chunk was lost in flight (severed transfer): it re-enters
    /// the dirty stream, exactly as if the guest had re-dirtied it.
    pub fn send_lost(&mut self, c: ChunkId) {
        debug_assert!(self.inflight > 0);
        self.inflight -= 1;
        self.tracker.record_write(c);
    }

    /// Chunks still owed (queued, not counting in-flight).
    pub fn remaining(&self) -> u32 {
        self.tracker.remaining()
    }

    /// True when the dirty stream drained and nothing is in flight — the
    /// condition for allowing the stop-and-copy.
    pub fn converged(&self) -> bool {
        self.tracker.converged() && self.inflight == 0
    }

    /// Re-transmissions beyond the first copy of each chunk.
    pub fn total_resent(&self) -> u64 {
        self.tracker.total_resent()
    }
}

/// Source-side state of the `mirror` baseline: one background bulk pass;
/// concurrent writes are mirrored synchronously so nothing is ever
/// re-sent by the bulk stream.
#[derive(Debug)]
pub struct MirrorSource {
    bulk: ChunkSet,
    inflight: u32,
    mirrored_writes: u64,
}

impl MirrorSource {
    /// Start the bulk phase over the locally allocated chunks.
    pub fn start(allocated: ChunkSet) -> Self {
        MirrorSource {
            bulk: allocated,
            inflight: 0,
            mirrored_writes: 0,
        }
    }

    /// Next chunk for the bulk stream.
    pub fn next_send(&mut self) -> Option<ChunkId> {
        let c = self.bulk.pop_first();
        if c.is_some() {
            self.inflight += 1;
        }
        c
    }

    /// A bulk chunk landed at the destination.
    pub fn send_done(&mut self) {
        debug_assert!(self.inflight > 0);
        self.inflight -= 1;
    }

    /// A bulk chunk was lost in flight (severed transfer): back into
    /// the bulk queue for another pass.
    pub fn send_lost(&mut self, c: ChunkId) {
        debug_assert!(self.inflight > 0);
        self.inflight -= 1;
        self.bulk.insert(c);
    }

    /// A guest write during migration: it is mirrored synchronously; if
    /// the chunk was still queued for bulk it can be dropped from the
    /// queue (the mirror just delivered fresher content).
    pub fn on_write(&mut self, c: ChunkId) {
        self.bulk.remove(c);
        self.mirrored_writes += 1;
    }

    /// True when the bulk pass fully drained — the stop-and-copy gate.
    pub fn converged(&self) -> bool {
        self.bulk.is_empty() && self.inflight == 0
    }

    /// Chunks still queued for the bulk pass.
    pub fn remaining(&self) -> u32 {
        self.bulk.count()
    }

    /// Number of synchronously mirrored writes.
    pub fn mirrored_writes(&self) -> u64 {
        self.mirrored_writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(n: u32, ids: &[u32]) -> ChunkSet {
        ChunkSet::from_iter(n, ids.iter().map(|&i| ChunkId(i)))
    }

    // ---- HybridSource (Algorithms 1 & 2) ----

    #[test]
    fn push_drains_modified_set() {
        let mut s = HybridSource::start(&set(16, &[2, 5, 9]), 3, true);
        let mut pushed = vec![];
        while let Some(c) = s.next_push() {
            pushed.push(c.0);
            s.push_done(c);
        }
        assert_eq!(pushed, vec![2, 5, 9]);
        assert_eq!(s.remaining_count(), 0);
    }

    #[test]
    fn hot_chunk_withheld_after_threshold() {
        let mut s = HybridSource::start(&set(16, &[1]), 2, true);
        s.on_write(ChunkId(1));
        s.on_write(ChunkId(1)); // count = 2 = Threshold: no longer pushable
        assert_eq!(s.next_push(), None);
        let (remaining, counts) = s.handoff();
        assert!(remaining.contains(ChunkId(1)));
        assert_eq!(counts[1], 2);
    }

    #[test]
    fn chunk_pushed_at_most_threshold_times() {
        let threshold = 3u32;
        let mut s = HybridSource::start(&set(16, &[7]), threshold, true);
        let mut pushes = 0;
        // Adversarial guest: rewrites the chunk right after every push.
        while let Some(c) = s.next_push() {
            pushes += 1;
            s.push_done(c);
            s.on_write(c);
        }
        assert_eq!(pushes as u32, threshold, "push bounded by Threshold");
        assert!(s.remaining_count() > 0, "hot chunk left for the prefetch");
    }

    #[test]
    fn rewrite_during_flight_requeues() {
        let mut s = HybridSource::start(&set(16, &[4]), 3, true);
        let c = s.next_push().unwrap();
        s.on_write(c); // rewritten while the push is in the pipeline
        s.push_done(c);
        assert_eq!(s.next_push(), Some(c), "fresh content must go again");
    }

    #[test]
    fn postcopy_mode_never_pushes() {
        let mut s = HybridSource::start(&set(16, &[1, 2, 3]), 3, false);
        assert_eq!(s.next_push(), None);
        s.on_write(ChunkId(5));
        assert_eq!(s.next_push(), None);
        let (remaining, _) = s.handoff();
        assert_eq!(remaining.count(), 4);
        assert_eq!(s.total_pushes(), 0);
    }

    #[test]
    fn handoff_stops_push_phase() {
        let mut s = HybridSource::start(&set(16, &[1, 2]), 3, true);
        let _ = s.handoff();
        assert_eq!(s.next_push(), None);
        s.on_write(ChunkId(3));
        assert_eq!(s.next_push(), None, "no pushing after sync");
    }

    // ---- HybridDest (Algorithms 3 & 4) ----

    #[test]
    fn prefetch_order_follows_write_counts() {
        let mut counts = vec![0u32; 16];
        counts[3] = 5;
        counts[8] = 9;
        counts[1] = 1;
        let mut d = HybridDest::start(set(16, &[1, 3, 8]), &counts, true);
        let order: Vec<u32> = std::iter::from_fn(|| {
            d.next_pull().map(|c| {
                d.pull_done(c);
                c.0
            })
        })
        .collect();
        assert_eq!(order, vec![8, 3, 1], "hottest chunk first");
        assert!(d.is_complete());
    }

    #[test]
    fn unprioritized_prefetch_is_chunk_order() {
        let mut counts = vec![0u32; 16];
        counts[3] = 5;
        counts[8] = 9;
        let mut d = HybridDest::start(set(16, &[3, 8, 1]), &counts, false);
        let order: Vec<u32> = std::iter::from_fn(|| {
            d.next_pull().map(|c| {
                d.pull_done(c);
                c.0
            })
        })
        .collect();
        assert_eq!(order, vec![1, 3, 8]);
    }

    #[test]
    fn tie_break_is_low_chunk_id() {
        let counts = vec![2u32; 16];
        let mut d = HybridDest::start(set(16, &[9, 4, 12]), &counts, true);
        assert_eq!(d.next_pull(), Some(ChunkId(4)));
    }

    #[test]
    fn read_paths_follow_algorithm_4() {
        let counts = vec![0u32; 16];
        let mut d = HybridDest::start(set(16, &[1, 2]), &counts, true);
        // Chunk being pulled: wait.
        let pulled = d.next_pull().unwrap();
        assert_eq!(d.on_read(pulled), ReadPath::WaitForPull);
        // Chunk still remaining: on-demand pull.
        let other = ChunkId(if pulled.0 == 1 { 2 } else { 1 });
        assert_eq!(d.on_read(other), ReadPath::PullOnDemand);
        // Anything else: local.
        assert_eq!(d.on_read(ChunkId(9)), ReadPath::Local);
        assert_eq!(d.ondemand_pulls(), 1);
    }

    #[test]
    fn write_cancels_pending_and_inflight_pulls() {
        let counts = vec![0u32; 16];
        let mut d = HybridDest::start(set(16, &[1, 2]), &counts, true);
        // Write to a chunk never pulled: silently dropped from remaining.
        assert!(!d.on_write(ChunkId(2)), "no in-flight pull to cancel");
        // Write to an in-flight pull: engine must cancel the transfer.
        let pulled = d.next_pull().unwrap();
        assert_eq!(pulled, ChunkId(1));
        assert!(d.on_write(pulled), "in-flight pull must be cancelled");
        assert!(d.is_complete(), "nothing left after both writes");
    }

    #[test]
    fn stale_heap_entries_skipped() {
        let counts = vec![0u32; 16];
        let mut d = HybridDest::start(set(16, &[1, 2, 3]), &counts, true);
        d.on_write(ChunkId(1));
        d.on_write(ChunkId(2));
        assert_eq!(d.next_pull(), Some(ChunkId(3)));
        d.pull_done(ChunkId(3));
        assert_eq!(d.next_pull(), None);
        assert!(d.is_complete());
    }

    // ---- PrecopySource ----

    #[test]
    fn precopy_convergence_gate_includes_inflight() {
        let mut p = PrecopySource::start(set(16, &[0]));
        let c = p.next_send().unwrap();
        assert!(!p.converged(), "in-flight chunk blocks convergence");
        p.send_done();
        assert!(p.converged());
        p.on_write(c);
        assert!(!p.converged(), "re-dirtied after send");
        assert_eq!(p.next_send(), Some(c));
        assert_eq!(p.total_resent(), 1);
    }

    // ---- MirrorSource ----

    #[test]
    fn mirror_bulk_skips_freshly_mirrored_chunks() {
        let mut m = MirrorSource::start(set(16, &[1, 2, 3]));
        m.on_write(ChunkId(2)); // mirrored synchronously: bulk can skip it
        let mut sent = vec![];
        while let Some(c) = m.next_send() {
            sent.push(c.0);
            m.send_done();
        }
        assert_eq!(sent, vec![1, 3]);
        assert!(m.converged());
        assert_eq!(m.mirrored_writes(), 1);
    }

    #[test]
    fn mirror_never_resends_bulk_chunks() {
        let mut m = MirrorSource::start(set(16, &[5]));
        let c = m.next_send().unwrap();
        m.send_done();
        m.on_write(c); // after bulk send: mirror carries it, not the bulk
        assert_eq!(m.next_send(), None);
        assert!(m.converged());
    }

    // ---- StrategyKind ----

    #[test]
    fn strategy_metadata() {
        assert_eq!(StrategyKind::Hybrid.label(), "our-approach");
        assert!(StrategyKind::Hybrid.ends_after_control_transfer());
        assert!(StrategyKind::Postcopy.ends_after_control_transfer());
        assert!(!StrategyKind::Precopy.ends_after_control_transfer());
        assert!(!StrategyKind::SharedFs.uses_local_storage());
        assert_eq!(StrategyKind::ALL.len(), 5);
    }
}
