//! # lsm-hypervisor — VM lifecycle and memory live migration
//!
//! The paper's storage transfer scheme is deliberately **independent of the
//! memory migration strategy** (§4.1, "Transparency with respect to the
//! hypervisor"): the hypervisor migrates memory however it likes, and the
//! migration manager only learns about the transfer of control via the
//! `sync` call QEMU issues right before the stop-and-copy.
//!
//! This crate models that hypervisor side:
//!
//! * [`Vm`] — virtual machine descriptor with pause/resume bookkeeping
//!   (downtime accounting).
//! * [`MemoryProfile`] — how much memory a workload actually touches and
//!   how fast it dirties pages (including the page-cache dirtying that
//!   couples disk writes to memory state — the effect that makes
//!   I/O-intensive guests hard to pre-copy).
//! * [`PrecopyMemory`] — QEMU-style iterative pre-copy: a first pass over
//!   touched pages, then rounds re-sending pages dirtied in the meantime,
//!   until the remainder fits in the downtime target (or a forced-
//!   convergence round cap fires, like `migrate_set_downtime` being raised
//!   by an operator).
//! * [`PostcopyMemory`] — a minimal post-copy memory migrator (the paper's
//!   §6 future work), used by the memory-strategy ablation.
//!
//! All state machines are *pure*: the engine reports measured dirty bytes
//! and transfer rates; the machines answer "what to send next".

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod memory;
pub mod postcopy;
pub mod precopy;
pub mod vm;

pub use memory::{MemMigrationConfig, MemoryProfile};
pub use postcopy::{PostcopyMemory, PostcopyStep};
pub use precopy::{NextStep, PrecopyMemory};
pub use vm::{Vm, VmId, VmState};
