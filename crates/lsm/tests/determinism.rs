//! Seeded-determinism regression: running the same scenario twice with
//! the same seed yields **byte-identical** serialized `RunReport`s —
//! including the paper-scale `scenarios/scale64.toml` and the shipped
//! fault scenarios. This is the property every other bit-identity test
//! (solver equivalence, fuzzing, report diffing across PRs) stands on.

use lsm::experiments::scenario::{run_scenario, run_scenario_with_solver, ScenarioSpec};
use lsm::experiments::{faults, stress};
use lsm::netsim::SolverMode;

fn serialized(spec: &ScenarioSpec) -> String {
    let report = run_scenario(spec).expect("scenario runs");
    serde_json::to_string_pretty(&report).expect("report serializes")
}

fn assert_deterministic(name: &str, spec: &ScenarioSpec) {
    let a = serialized(spec);
    let b = serialized(spec);
    if a != b {
        let diff = a
            .lines()
            .zip(b.lines())
            .enumerate()
            .find(|(_, (x, y))| x != y);
        panic!("{name}: two identical runs diverge at {diff:?}");
    }
}

#[test]
fn demo_scenario_is_deterministic() {
    let spec =
        ScenarioSpec::from_toml(include_str!("../../../scenarios/demo.toml")).expect("parses");
    assert_deterministic("demo.toml", &spec);
}

#[test]
fn fault_scenarios_are_deterministic() {
    for (file, spec) in faults::all() {
        assert_deterministic(file, &spec);
    }
}

#[test]
fn scale64_quick_is_deterministic() {
    assert_deterministic("scale64-quick", &stress::scale64_quick_spec());
}

/// The full paper-scale scenario, loaded from the checked-in file
/// exactly as `lsm bench` would (two ~1 s runs; worth the wall time —
/// 128 staggered migrations exercise every queue-ordering edge).
#[test]
fn scale64_file_is_deterministic() {
    let spec =
        ScenarioSpec::from_toml(include_str!("../../../scenarios/scale64.toml")).expect("parses");
    assert_deterministic("scale64.toml", &spec);
}

/// The orchestrated scenarios (planner placement, adaptive strategy
/// selection, admission-cap deferral) are byte-identical across two
/// runs *and* across the network rate solvers — planner decisions are
/// part of the engine's replay contract, not a source of noise.
#[test]
fn orchestrated_scenarios_are_deterministic_across_runs_and_solvers() {
    for (file, text) in [
        (
            "evacuate.toml",
            include_str!("../../../scenarios/evacuate.toml"),
        ),
        (
            "adaptive64.toml",
            include_str!("../../../scenarios/adaptive64.toml"),
        ),
        (
            "cost64.toml",
            include_str!("../../../scenarios/cost64.toml"),
        ),
        // The autonomic scenarios have no scripted migrations at all —
        // every event downstream of a monitor tick is rebalancer-made,
        // so these pins cover the whole closed loop.
        (
            "hotspot_drill.toml",
            include_str!("../../../scenarios/hotspot_drill.toml"),
        ),
        (
            "slow_drain.toml",
            include_str!("../../../scenarios/slow_drain.toml"),
        ),
        // The chaos storm leans on every resilience path at once —
        // retry backoff, crash re-placement, resumed transfers, a
        // cancellation — and all of it must replay bit-identically.
        (
            "chaos_storm.toml",
            include_str!("../../../scenarios/chaos_storm.toml"),
        ),
    ] {
        let spec = ScenarioSpec::from_toml(text).expect("parses");
        assert_deterministic(file, &spec);
        let incremental = run_scenario_with_solver(&spec, SolverMode::Incremental)
            .map(|r| serde_json::to_string_pretty(&r).expect("serializes"))
            .expect("runs");
        let reference = run_scenario_with_solver(&spec, SolverMode::Reference)
            .map(|r| serde_json::to_string_pretty(&r).expect("serializes"))
            .expect("runs");
        if incremental != reference {
            let diff = incremental
                .lines()
                .zip(reference.lines())
                .enumerate()
                .find(|(_, (x, y))| x != y);
            panic!("{file}: solvers diverge at {diff:?}");
        }
    }
}

/// Byte-identity across worker-thread counts, under both solvers: for
/// every tracked scenario, `--threads 1` (the monolithic engine),
/// `--threads 2` and `--threads 8` (the sharded parallel engine, when
/// the partitioner admits the scenario — monolithic fallback when not)
/// must serialize the exact same `RunReport`. This is the sharded
/// engine's whole contract: thread count is a performance knob, never
/// an observable.
fn assert_thread_count_invariant(name: &str, spec: &ScenarioSpec) {
    use lsm::experiments::shard::run_scenario_threaded_with_solver;
    for solver in [SolverMode::Incremental, SolverMode::Reference] {
        let reports: Vec<String> = [1usize, 2, 8]
            .iter()
            .map(|&threads| {
                run_scenario_threaded_with_solver(spec, threads, solver)
                    .map(|r| serde_json::to_string_pretty(&r).expect("serializes"))
                    .expect("runs")
            })
            .collect();
        for (i, threads) in [2usize, 8].iter().enumerate() {
            if reports[0] != reports[i + 1] {
                let diff = reports[0]
                    .lines()
                    .zip(reports[i + 1].lines())
                    .enumerate()
                    .find(|(_, (x, y))| x != y);
                panic!("{name} [{solver:?}]: --threads {threads} diverges from --threads 1 at {diff:?}");
            }
        }
    }
}

#[test]
fn tracked_scenarios_are_thread_count_invariant() {
    // The genuinely shardable fleet: 32 independent pair components.
    assert_thread_count_invariant("scale1024-quick", &stress::scale1024_quick_spec());
    // The rest of the tracked set exercises the partitioner's fallback
    // (orchestrated, autonomic, single-component, or fault-bearing
    // scenarios run monolithic at any thread count).
    assert_thread_count_invariant("scale64-quick", &stress::scale64_quick_spec());
    for (file, text) in [
        ("demo.toml", include_str!("../../../scenarios/demo.toml")),
        (
            "evacuate.toml",
            include_str!("../../../scenarios/evacuate.toml"),
        ),
        ("qos64.toml", include_str!("../../../scenarios/qos64.toml")),
        (
            "hotspot_drill.toml",
            include_str!("../../../scenarios/hotspot_drill.toml"),
        ),
        (
            "chaos_storm.toml",
            include_str!("../../../scenarios/chaos_storm.toml"),
        ),
    ] {
        let spec = ScenarioSpec::from_toml(text).expect("parses");
        assert_thread_count_invariant(file, &spec);
    }
    for (file, spec) in faults::all() {
        assert_thread_count_invariant(file, &spec);
    }
}

/// The full 1024-node fleet (2048 VMs, 512 shards): byte-identical at
/// `--threads 1/2/8` under both solvers. Six ~15–45 s runs — worth it
/// before a release, too slow for every `cargo test`:
/// `cargo test -p lsm --test determinism -- --ignored`.
#[test]
#[ignore = "six paper-scale runs; run explicitly with -- --ignored"]
fn scale1024_full_is_thread_count_invariant() {
    let spec =
        ScenarioSpec::from_toml(include_str!("../../../scenarios/scale1024.toml")).expect("parses");
    assert_thread_count_invariant("scale1024.toml", &spec);
}

/// The seed matters: "same seed ⇒ same run" must not be vacuous, so a
/// *different* workload seed has to produce a genuinely different run.
/// (Seeds live on the stochastic workloads — the Zipf hotspot writer
/// here; an engine run is a pure function of the full spec.)
#[test]
fn seed_is_threaded_through_the_run() {
    let base = faults::dest_crash_spec();
    let mut reseeded = base.clone();
    match &mut reseeded.vms[0].workload {
        lsm::workloads::WorkloadSpec::HotspotWrite { seed, .. } => *seed = 4242,
        other => panic!("dest_crash_spec changed shape: {other:?}"),
    }
    // Both runs are individually deterministic...
    assert_deterministic("dest-crash seed=7", &base);
    assert_deterministic("dest-crash seed=4242", &reseeded);
    // ...and different seeds visit different chunks, so the serialized
    // reports must diverge (a dead seed would make them identical).
    assert_ne!(
        serialized(&base),
        serialized(&reseeded),
        "the workload seed is dead state: two different seeds produced identical runs"
    );
}
