//! The checked, declarative front door to the engine.
//!
//! [`SimulationBuilder`] validates everything user input can get wrong —
//! cluster configuration, node indices, workload footprints, migration
//! targets — and returns typed errors instead of panicking. [`build`]
//! yields a [`Simulation`]: a deployed cluster whose migration jobs can
//! be run to a horizon, watched through an [`Observer`], queried for
//! per-job [`MigrationProgress`] mid-run, and aborted cooperatively.
//!
//! ```
//! use lsm_core::builder::SimulationBuilder;
//! use lsm_core::config::ClusterConfig;
//! use lsm_core::policy::StrategyKind;
//! use lsm_core::NodeId;
//! use lsm_simcore::SimTime;
//! use lsm_workloads::WorkloadSpec;
//!
//! # fn main() -> Result<(), lsm_core::EngineError> {
//! let mut b = SimulationBuilder::new(ClusterConfig::small_test())?;
//! let vm = b.add_vm(
//!     NodeId(0),
//!     WorkloadSpec::SeqWrite { offset: 0, total: 16 << 20, block: 1 << 20, think_secs: 0.05 },
//!     StrategyKind::Hybrid,
//!     SimTime::ZERO,
//! )?;
//! let job = b.migrate(vm, NodeId(1), SimTime::from_secs(1))?;
//! let mut sim = b.build()?;
//! let report = sim.run_until(SimTime::from_secs(120));
//! assert_eq!(sim.status(job), Some(lsm_core::MigrationStatus::Completed));
//! assert!(report.the_migration().consistent == Some(true));
//! # Ok(())
//! # }
//! ```
//!
//! [`build`]: SimulationBuilder::build

use crate::autonomic::AutonomicConfig;
use crate::config::ClusterConfig;
use crate::engine::{
    Engine, FaultKind, JobId, MigrationProgress, MigrationStatus, NullObserver, Observer, RunReport,
};
use crate::error::EngineError;
use crate::planner::{OrchestratorConfig, RequestIntent};
use crate::policy::StrategyKind;
use crate::qos::QosConfig;
use crate::resilience::ResilienceConfig;
use lsm_netsim::NodeId;
use lsm_simcore::time::{SimDuration, SimTime};
use lsm_workloads::WorkloadSpec;

/// Typed handle to a VM added to a [`SimulationBuilder`] (and, after
/// [`SimulationBuilder::build`], to the same VM in the [`Simulation`]).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct VmHandle(u32);

impl VmHandle {
    /// The VM's dense index (matches `RunReport::vms` order).
    pub fn index(self) -> u32 {
        self.0
    }
}

/// Fallible builder for a simulation. Each call validates eagerly
/// (delegating to the engine's own checked API, so there is exactly
/// one copy of the rules) and errors point at the offending request.
pub struct SimulationBuilder {
    eng: Engine,
}

impl SimulationBuilder {
    /// Start building over a cluster configuration.
    ///
    /// # Errors
    /// [`EngineError::InvalidConfig`] for unusable configurations.
    pub fn new(cfg: ClusterConfig) -> Result<Self, EngineError> {
        Ok(SimulationBuilder {
            eng: Engine::new(cfg)?,
        })
    }

    /// The configuration this simulation will run on.
    pub fn config(&self) -> &ClusterConfig {
        self.eng.config()
    }

    /// Configure the orchestration layer: the admission cap
    /// (max concurrently running migrations), the planner (fixed or
    /// adaptive) and the telemetry window. Must be called before any
    /// migration or request is scheduled.
    ///
    /// # Errors
    /// [`EngineError::InvalidRequest`] for an unusable configuration or
    /// when work is already queued.
    pub fn with_orchestrator(&mut self, cfg: OrchestratorConfig) -> Result<(), EngineError> {
        self.eng.configure_orchestrator(cfg)
    }

    /// Enable the autonomic rebalancer: a closed-loop monitor that
    /// classifies per-node I/O pressure on a periodic tick and
    /// originates (and re-plans) migrations on its own — see
    /// [`AutonomicConfig`]. Must be called before any migration or
    /// request is scheduled.
    ///
    /// # Errors
    /// [`EngineError::InvalidRequest`] for an unusable configuration or
    /// when work is already queued.
    pub fn with_autonomic(&mut self, cfg: AutonomicConfig) -> Result<(), EngineError> {
        self.eng.configure_autonomic(cfg)
    }

    /// Enable the resilience layer: per-job retry with exponential
    /// backoff and resumable transfers, auto-converge guest throttling,
    /// and the hard downtime limit — see [`ResilienceConfig`]. Must be
    /// called before any migration or request is scheduled.
    ///
    /// # Errors
    /// [`EngineError::InvalidRequest`] for an unusable configuration or
    /// when work is already queued.
    pub fn with_resilience(&mut self, cfg: ResilienceConfig) -> Result<(), EngineError> {
        self.eng.configure_resilience(cfg)
    }

    /// Enable migration QoS shaping: a per-migration bandwidth cap,
    /// multifd-style parallel memory streams, and wire compression —
    /// see [`QosConfig`]. SLA accounting in the report is always on;
    /// this installs the *shaping* knobs. Must be called before any
    /// migration or request is scheduled.
    ///
    /// # Errors
    /// [`EngineError::InvalidRequest`] for an unusable configuration or
    /// when work is already queued.
    pub fn with_qos(&mut self, cfg: QosConfig) -> Result<(), EngineError> {
        self.eng.configure_qos(cfg)
    }

    /// Submit a high-level orchestration request (see
    /// [`RequestIntent`]) to fire at `at`: the planner expands it into
    /// concrete migrations, choosing each VM's destination (and, under
    /// the adaptive planner, its strategy) under the admission cap.
    ///
    /// # Errors
    /// [`EngineError::InvalidRequest`] for an out-of-range node or an
    /// unknown workload group.
    pub fn request(&mut self, at: SimTime, intent: RequestIntent) -> Result<u32, EngineError> {
        self.eng.submit_request(at, intent)
    }

    /// Submit a node-evacuation request: migrate every live VM off
    /// `node` starting at `at` (sugar for
    /// [`SimulationBuilder::request`]).
    ///
    /// # Errors
    /// [`EngineError::InvalidRequest`] for an out-of-range node.
    pub fn request_evacuation(&mut self, node: NodeId, at: SimTime) -> Result<u32, EngineError> {
        self.request(at, RequestIntent::Evacuate { node: node.0 })
    }

    /// Submit a group-rebalance request: spread workload group `group`
    /// (by deployment order) across the least-loaded healthy nodes.
    ///
    /// # Errors
    /// [`EngineError::InvalidRequest`] for an unknown group.
    pub fn request_rebalance(&mut self, group: u32, at: SimTime) -> Result<u32, EngineError> {
        self.request(at, RequestIntent::Rebalance { group })
    }

    /// Deploy a VM on `node` running `spec` under `strategy`, with its
    /// workload starting at `start_at`.
    ///
    /// # Errors
    /// Out-of-range node, multi-rank workload (use
    /// [`SimulationBuilder::add_group`]), or a workload larger than the
    /// disk image.
    pub fn add_vm(
        &mut self,
        node: NodeId,
        spec: WorkloadSpec,
        strategy: StrategyKind,
        start_at: SimTime,
    ) -> Result<VmHandle, EngineError> {
        let id = self.eng.add_vm(node.0, &spec, strategy, start_at)?;
        Ok(VmHandle(id.0))
    }

    /// Deploy a barrier-synchronized workload group (one VM per
    /// placement), all under one strategy.
    ///
    /// # Errors
    /// Empty group, rank-count mismatch, out-of-range nodes, or
    /// oversized workloads.
    pub fn add_group(
        &mut self,
        placements: &[(NodeId, WorkloadSpec)],
        strategy: StrategyKind,
        start_at: SimTime,
    ) -> Result<Vec<VmHandle>, EngineError> {
        let raw: Vec<(u32, WorkloadSpec)> = placements
            .iter()
            .map(|(node, spec)| (node.0, spec.clone()))
            .collect();
        let ids = self.eng.add_group(&raw, strategy, start_at)?;
        Ok(ids.into_iter().map(|id| VmHandle(id.0)).collect())
    }

    /// Schedule a live migration of `vm` to `dest` at `at`, returning
    /// the job handle it will have in the built [`Simulation`].
    ///
    /// # Errors
    /// Unknown VM, out-of-range destination, destination equal to the
    /// VM's placement node, duplicate migration for the VM, or a
    /// strategy incompatible with post-copy memory migration.
    pub fn migrate(
        &mut self,
        vm: VmHandle,
        dest: NodeId,
        at: SimTime,
    ) -> Result<JobId, EngineError> {
        self.eng
            .schedule_migration(lsm_hypervisor::VmId(vm.0), dest.0, at)
    }

    /// Like [`SimulationBuilder::migrate`], additionally arming an abort
    /// deadline: a job still running `deadline` after its request time
    /// is aborted with [`crate::engine::FailureReason::DeadlineExceeded`]
    /// and its partial progress preserved in the report.
    ///
    /// # Errors
    /// Everything [`SimulationBuilder::migrate`] reports, plus
    /// [`EngineError::InvalidFault`] for a zero deadline.
    pub fn migrate_with_deadline(
        &mut self,
        vm: VmHandle,
        dest: NodeId,
        at: SimTime,
        deadline: SimDuration,
    ) -> Result<JobId, EngineError> {
        self.eng.schedule_migration_with_deadline(
            lsm_hypervisor::VmId(vm.0),
            dest.0,
            at,
            Some(deadline),
        )
    }

    /// Like [`SimulationBuilder::migrate`], but leaving the transfer
    /// strategy open: the adaptive planner resolves it from the VM's
    /// windowed write intensity at admission time (the paper's §4
    /// decision rule, operationalized).
    ///
    /// # Errors
    /// Everything [`SimulationBuilder::migrate`] reports, plus
    /// [`EngineError::InvalidRequest`] unless the orchestrator was
    /// configured with the adaptive planner.
    pub fn migrate_adaptive(
        &mut self,
        vm: VmHandle,
        dest: NodeId,
        at: SimTime,
    ) -> Result<JobId, EngineError> {
        self.eng
            .schedule_migration_adaptive(lsm_hypervisor::VmId(vm.0), dest.0, at, None)
    }

    /// [`SimulationBuilder::migrate_adaptive`] with an abort deadline
    /// (see [`SimulationBuilder::migrate_with_deadline`]).
    ///
    /// # Errors
    /// The union of what the two combined methods report.
    pub fn migrate_adaptive_with_deadline(
        &mut self,
        vm: VmHandle,
        dest: NodeId,
        at: SimTime,
        deadline: SimDuration,
    ) -> Result<JobId, EngineError> {
        self.eng
            .schedule_migration_adaptive(lsm_hypervisor::VmId(vm.0), dest.0, at, Some(deadline))
    }

    /// Schedule a fault (link degradation/restoration, node crash, or
    /// transfer stall) to fire at `at`. Faults interleave
    /// deterministically with every other event; two runs of the same
    /// plan are bit-identical.
    ///
    /// # Errors
    /// [`EngineError::InvalidFault`] for out-of-range nodes/VMs, link
    /// factors outside `(0, 1]`, or non-positive stall durations.
    pub fn inject_fault(&mut self, at: SimTime, kind: FaultKind) -> Result<(), EngineError> {
        self.eng.schedule_fault(at, kind)
    }

    /// Schedule a cancellation of `job` at `at`: the in-flight attempt
    /// is unwound cleanly at whatever phase it has reached and the job
    /// fails with [`crate::engine::FailureReason::Cancelled`] (a no-op
    /// if the job is already terminal by then). Works with or without
    /// [`SimulationBuilder::with_resilience`].
    ///
    /// # Errors
    /// [`EngineError::InvalidRequest`] for an unknown job.
    pub fn cancel_at(&mut self, at: SimTime, job: JobId) -> Result<(), EngineError> {
        self.eng.schedule_cancellation(at, job)
    }

    /// Finish building: everything was validated (and deployed) as it
    /// was added, so this cannot fail.
    pub fn build(self) -> Result<Simulation, EngineError> {
        Ok(Simulation { eng: self.eng })
    }
}

/// A deployed cluster with scheduled migration jobs: run it (optionally
/// observed), query job status/progress between or during runs, and
/// read the final [`RunReport`].
pub struct Simulation {
    eng: Engine,
}

impl Simulation {
    /// Run until `horizon` (or until the event queue drains).
    ///
    /// Can be called repeatedly with growing horizons; job status and
    /// progress are queryable in between.
    pub fn run_until(&mut self, horizon: SimTime) -> RunReport {
        self.eng.run_until(horizon)
    }

    /// Like [`Simulation::run_until`] but with observer callbacks on
    /// every job status change and migration milestone; the observer can
    /// abort the run.
    pub fn run_observed(&mut self, horizon: SimTime, obs: &mut dyn Observer) -> RunReport {
        self.eng.run_until_observed(horizon, obs)
    }

    /// Run with the null observer — alias of [`Simulation::run_until`]
    /// for symmetry.
    pub fn run(&mut self, horizon: SimTime) -> RunReport {
        self.run_observed(horizon, &mut NullObserver)
    }

    /// All migration jobs, in scheduling order.
    pub fn jobs(&self) -> Vec<JobId> {
        self.eng.job_ids()
    }

    /// Lifecycle status of a job.
    pub fn status(&self, job: JobId) -> Option<MigrationStatus> {
        self.eng.job_status(job)
    }

    /// Point-in-time progress snapshot of a job.
    pub fn progress(&self, job: JobId) -> Option<MigrationProgress> {
        self.eng.job_progress(job)
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.eng.now()
    }

    /// Event-level access for power users (the engine API is itself
    /// fallible; nothing here can bypass validation).
    pub fn engine(&self) -> &Engine {
        &self.eng
    }

    /// Mutable event-level access.
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.eng
    }

    /// Take the engine out of the simulation wrapper — the sharded
    /// runner ([`crate::parallel`]) owns its shard engines directly so
    /// it can move them onto worker threads.
    pub fn into_engine(self) -> Engine {
        self.eng
    }
}
