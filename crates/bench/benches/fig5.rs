//! Figure 5 (CM1 under successive migrations): regenerates panels
//! (a) cumulated migration time, (b) migration traffic, (c) runtime
//! increase.

use criterion::{criterion_group, criterion_main, Criterion};
use lsm_bench::print_once;
use lsm_core::policy::StrategyKind;
use lsm_experiments::{fig5, Scale};

fn bench_fig5(c: &mut Criterion) {
    let full = fig5::run_fig5(Scale::Quick);
    print_once("Fig 5a", &full.table_time());
    print_once("Fig 5b", &full.table_traffic());
    print_once("Fig 5c", &full.table_slowdown());

    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(8));
    g.bench_function("migration_time", |b| {
        b.iter(|| {
            let r = fig5::run_fig5_strategies(Scale::Quick, &[StrategyKind::Hybrid]);
            std::hint::black_box(r.table_time().len())
        })
    });
    g.bench_function("network_traffic", |b| {
        b.iter(|| {
            let r = fig5::run_fig5_strategies(Scale::Quick, &[StrategyKind::Postcopy]);
            std::hint::black_box(r.table_traffic().len())
        })
    });
    g.bench_function("slowdown", |b| {
        b.iter(|| {
            let r = fig5::run_fig5_strategies(Scale::Quick, &[StrategyKind::Mirror]);
            std::hint::black_box(r.table_slowdown().len())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
