//! The diagnostic vocabulary: codes, severities, spans and rendering.
//!
//! Every lint the analyzer can raise has a stable `Lxxx` code (the
//! contract the CLI, the CI gate and the tests key on), a default
//! severity, and a [`Span`] pointing at the scenario section that
//! triggered it. Codes are grouped by decade: `L00x` structural and
//! feasibility proofs, `L01x` dead configuration, `L02x` conflicting
//! configuration, `L03x` shard-admission explainer.

use serde::{Serialize, Value};
use std::fmt;

/// How bad a diagnostic is.
///
/// `Error` means the run is provably broken (it cannot build, or a
/// migration cannot meet its own constraints); `Warn` means the spec
/// very likely does not describe the experiment the author intended;
/// `Info` is explanatory output (the shard-admission explainer) and
/// never fails a lint, not even under `--deny warnings`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Explanatory; never fails the lint.
    Info,
    /// Suspicious; fails under `--deny warnings`.
    Warn,
    /// Provably broken; always fails the lint.
    Error,
}

impl Severity {
    /// Lowercase label (`error` / `warn` / `info`).
    pub fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warn => "warn",
            Severity::Info => "info",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl Serialize for Severity {
    fn to_value(&self) -> Value {
        Value::Str(self.label().to_string())
    }
}

/// Stable identifier of one lint rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiagCode {
    /// `L000`: the spec would not build — bad index, bad parameter,
    /// non-finite time, grouped-scenario override.
    InvalidSpec,
    /// `L001`: a migration (or the plan as a whole) provably cannot
    /// finish within the horizon — the unconditional `bytes / bw`
    /// lower bound already overruns it.
    CapacityInfeasible,
    /// `L002`: a statically-chosen Precopy/Mirror migration whose
    /// workload re-dirties at ≥ 95 % of the effective wire bandwidth,
    /// with nothing armed to bound it (no resilience, no deadline).
    NonConvergent,
    /// `L003`: a migration deadline below a conservatively discounted
    /// transfer-time lower bound — the job is guaranteed to abort with
    /// `DeadlineExceeded`.
    DeadlineImpossible,
    /// `L010`: a fault that provably has no effect (restore with no
    /// prior fault, stall of a VM that never migrates, crash of a node
    /// no traffic can touch).
    DeadFault,
    /// `L011`: a timed event scheduled after the horizon.
    DeadEvent,
    /// `L012`: a cancellation firing before its migration is even
    /// requested (the migration can never run).
    DeadCancellation,
    /// `L013`: a QoS bandwidth cap at or above the NIC/migration speed
    /// — shaping that never binds.
    DeadQosCap,
    /// `L014`: an admission cap at or above the total job count —
    /// a queue that can never form.
    DeadAdmissionCap,
    /// `L020`: a downtime limit combined with post-copy control
    /// transfer, which never performs the stop-and-copy the limit
    /// governs.
    ConflictDowntimePostcopy,
    /// `L021`: a retry policy none of whose enabled causes can occur
    /// in this scenario.
    ConflictRetryUnreachable,
    /// `L022`: an autonomic per-VM cooldown at or beyond the horizon.
    ConflictCooldownHorizon,
    /// `L030`: one reason the sharded runner would decline this
    /// scenario (`lsm run --threads` would fall back to monolithic).
    ShardInadmissible,
    /// `L031`: the scenario admits sharded execution.
    ShardOk,
}

impl DiagCode {
    /// The stable `Lxxx` string.
    pub fn as_str(self) -> &'static str {
        match self {
            DiagCode::InvalidSpec => "L000",
            DiagCode::CapacityInfeasible => "L001",
            DiagCode::NonConvergent => "L002",
            DiagCode::DeadlineImpossible => "L003",
            DiagCode::DeadFault => "L010",
            DiagCode::DeadEvent => "L011",
            DiagCode::DeadCancellation => "L012",
            DiagCode::DeadQosCap => "L013",
            DiagCode::DeadAdmissionCap => "L014",
            DiagCode::ConflictDowntimePostcopy => "L020",
            DiagCode::ConflictRetryUnreachable => "L021",
            DiagCode::ConflictCooldownHorizon => "L022",
            DiagCode::ShardInadmissible => "L030",
            DiagCode::ShardOk => "L031",
        }
    }

    /// The severity this code is raised at.
    pub fn severity(self) -> Severity {
        match self {
            DiagCode::InvalidSpec | DiagCode::CapacityInfeasible | DiagCode::DeadlineImpossible => {
                Severity::Error
            }
            DiagCode::NonConvergent
            | DiagCode::DeadFault
            | DiagCode::DeadEvent
            | DiagCode::DeadCancellation
            | DiagCode::DeadQosCap
            | DiagCode::DeadAdmissionCap
            | DiagCode::ConflictDowntimePostcopy
            | DiagCode::ConflictRetryUnreachable
            | DiagCode::ConflictCooldownHorizon => Severity::Warn,
            DiagCode::ShardInadmissible | DiagCode::ShardOk => Severity::Info,
        }
    }
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl Serialize for DiagCode {
    fn to_value(&self) -> Value {
        Value::Str(self.as_str().to_string())
    }
}

/// Where in the scenario document a diagnostic points.
///
/// Renders in TOML-path style (`migrations[2]`, `cluster`, …) so a
/// reader can jump straight to the offending section.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Span {
    /// The scenario as a whole (top-level keys, cross-section facts).
    Scenario,
    /// The `[cluster]` section.
    Cluster,
    /// `[[vms]]` entry `i`.
    Vm(usize),
    /// `[[migrations]]` entry `i`.
    Migration(usize),
    /// `[[faults]]` entry `i`.
    Fault(usize),
    /// `[[cancellations]]` entry `i`.
    Cancellation(usize),
    /// `[[requests]]` entry `i`.
    Request(usize),
    /// The `[qos]` section.
    Qos,
    /// The `[resilience]` section.
    Resilience,
    /// The `[autonomic]` section.
    Autonomic,
    /// The `[orchestrator]` section.
    Orchestrator,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Span::Scenario => f.write_str("scenario"),
            Span::Cluster => f.write_str("cluster"),
            Span::Vm(i) => write!(f, "vms[{i}]"),
            Span::Migration(i) => write!(f, "migrations[{i}]"),
            Span::Fault(i) => write!(f, "faults[{i}]"),
            Span::Cancellation(i) => write!(f, "cancellations[{i}]"),
            Span::Request(i) => write!(f, "requests[{i}]"),
            Span::Qos => f.write_str("qos"),
            Span::Resilience => f.write_str("resilience"),
            Span::Autonomic => f.write_str("autonomic"),
            Span::Orchestrator => f.write_str("orchestrator"),
        }
    }
}

impl Serialize for Span {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

/// One diagnostic: a code, where it points, what it says, and
/// (optionally) what to do about it.
#[derive(Clone, Debug, Serialize)]
pub struct Diag {
    /// Stable rule identifier (`L001`, …).
    pub code: DiagCode,
    /// Effective severity (the code's default).
    pub severity: Severity,
    /// Scenario section the diagnostic points at.
    pub span: Span,
    /// Human-readable statement of the problem.
    pub message: String,
    /// Optional remediation hint.
    pub suggestion: Option<String>,
}

impl Diag {
    /// A diagnostic at the code's default severity.
    pub fn new(code: DiagCode, span: Span, message: impl Into<String>) -> Self {
        Diag {
            code,
            severity: code.severity(),
            span,
            message: message.into(),
            suggestion: None,
        }
    }

    /// Attach a remediation hint.
    pub fn with_suggestion(mut self, s: impl Into<String>) -> Self {
        self.suggestion = Some(s.into());
        self
    }
}

impl fmt::Display for Diag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.code, self.span, self.message
        )?;
        if let Some(s) = &self.suggestion {
            write!(f, "\n  help: {s}")?;
        }
        Ok(())
    }
}

/// True when any diagnostic is an [`Severity::Error`].
pub fn has_errors(diags: &[Diag]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

/// The lint verdict: should this report fail the invocation?
/// Errors always fail; warnings fail only under `deny_warnings`;
/// `Info` never fails.
pub fn fails(diags: &[Diag], deny_warnings: bool) -> bool {
    diags
        .iter()
        .any(|d| d.severity == Severity::Error || (deny_warnings && d.severity == Severity::Warn))
}

/// Render a report the way `lsm lint` prints it, one diagnostic per
/// block, errors first.
pub fn render(diags: &[Diag]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_ranked() {
        assert_eq!(DiagCode::CapacityInfeasible.as_str(), "L001");
        assert_eq!(DiagCode::ShardOk.as_str(), "L031");
        assert_eq!(DiagCode::InvalidSpec.severity(), Severity::Error);
        assert_eq!(DiagCode::DeadFault.severity(), Severity::Warn);
        assert_eq!(DiagCode::ShardInadmissible.severity(), Severity::Info);
        assert!(Severity::Error > Severity::Warn);
        assert!(Severity::Warn > Severity::Info);
    }

    #[test]
    fn verdicts_follow_severity_and_deny_mode() {
        let info = Diag::new(DiagCode::ShardOk, Span::Scenario, "ok");
        let warn = Diag::new(DiagCode::DeadFault, Span::Fault(0), "dead");
        let err = Diag::new(DiagCode::InvalidSpec, Span::Vm(1), "bad");
        assert!(!fails(std::slice::from_ref(&info), true));
        assert!(!fails(std::slice::from_ref(&warn), false));
        assert!(fails(std::slice::from_ref(&warn), true));
        assert!(fails(std::slice::from_ref(&err), false));
        assert!(has_errors(&[err]));
        assert!(!has_errors(&[info, warn]));
    }

    #[test]
    fn rendering_is_grep_friendly() {
        let d = Diag::new(DiagCode::DeadEvent, Span::Fault(3), "after the horizon")
            .with_suggestion("drop it");
        let s = d.to_string();
        assert!(s.starts_with("warn[L011] faults[3]: after the horizon"));
        assert!(s.contains("help: drop it"));
    }

    #[test]
    fn diags_serialize_with_string_enums() {
        let d = Diag::new(DiagCode::NonConvergent, Span::Migration(2), "m");
        let v = serde::Serialize::to_value(&d);
        assert_eq!(v.get("code"), Some(&Value::Str("L002".into())));
        assert_eq!(v.get("severity"), Some(&Value::Str("warn".into())));
        assert_eq!(v.get("span"), Some(&Value::Str("migrations[2]".into())));
        assert_eq!(v.get("suggestion"), Some(&Value::Null));
    }
}
