//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's benches use —
//! `criterion_group!` / `criterion_main!`, `Criterion::bench_function`,
//! benchmark groups, `Bencher::iter` / `iter_batched`, `BatchSize`,
//! `black_box` — with a simple wall-clock measurement loop (fixed warm-up
//! plus a few timed batches, mean/min reported). No statistics, no
//! reports on disk; good enough to keep hot paths honest offline.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost (accepted, not interpreted).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: setup runs per iteration batch.
    SmallInput,
    /// Large inputs: fewer iterations per setup.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Measurement driver handed to bench closures.
pub struct Bencher {
    /// Total time and iterations accumulated by the measurement calls.
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        }
    }

    /// Time `routine` over a fixed iteration budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up.
        black_box(routine());
        let iters = 10u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += iters;
    }

    /// Time `routine` over values produced by `setup` (setup excluded
    /// from the measurement).
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
        let iters = 10u64;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
        }
        self.iters += iters;
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Run and report one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        let per_iter = if b.iters > 0 {
            b.elapsed / b.iters as u32
        } else {
            Duration::ZERO
        };
        println!("bench {id:<50} {per_iter:>12.2?}/iter ({} iters)", b.iters);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.to_string(),
        }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run and report one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{id}", self.name);
        self.c.bench_function(&full, f);
        self
    }

    /// Accepted for API compatibility; sampling is fixed here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; warm-up is fixed here.
    pub fn warm_up_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; measurement time is fixed here.
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Define a bench group function from a list of target functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Define `main` running the given bench groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
