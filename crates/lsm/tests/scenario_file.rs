//! The shipped `scenarios/demo.toml` must parse, run end-to-end, and
//! produce exactly the same report as the equivalent builder-API
//! program.

use lsm::core::builder::SimulationBuilder;
use lsm::core::{MigrationStatus, NodeId, StrategyKind};
use lsm::experiments::scenario::{run_scenario, ScenarioSpec};
use lsm::simcore::SimTime;

const DEMO: &str = include_str!("../../../scenarios/demo.toml");

#[test]
fn demo_file_parses_and_roundtrips() {
    let spec = ScenarioSpec::from_toml(DEMO).expect("demo.toml parses");
    assert_eq!(spec.name.as_deref(), Some("demo"));
    assert_eq!(spec.vms.len(), 2);
    assert_eq!(spec.migrations.len(), 2);
    // Partial [cluster] override: explicit fields stick, the rest
    // default.
    let cluster = spec.cluster_config();
    assert_eq!(cluster.nodes, 4);
    assert_eq!(cluster.image_size, 64 << 20);
    assert_eq!(cluster.disk_bw, lsm::simcore::units::mb_per_s(55.0));
    // Mixed strategies: scenario default + per-VM override.
    assert_eq!(spec.vm_strategy(0), StrategyKind::Hybrid);
    assert_eq!(spec.vm_strategy(1), StrategyKind::Postcopy);
    // Round-trip.
    let back = ScenarioSpec::from_toml(&spec.to_toml().unwrap()).unwrap();
    assert_eq!(back, spec);
}

#[test]
fn demo_file_runs_identically_to_the_builder_program() {
    let spec = ScenarioSpec::from_toml(DEMO).expect("demo.toml parses");
    let from_file = run_scenario(&spec).expect("runs");

    // The same scenario, written against the builder API directly.
    let mut b = SimulationBuilder::new(spec.cluster_config()).unwrap();
    let a = b
        .add_vm(
            NodeId(0),
            spec.vms[0].workload.clone(),
            StrategyKind::Hybrid,
            SimTime::ZERO,
        )
        .unwrap();
    let c = b
        .add_vm(
            NodeId(1),
            spec.vms[1].workload.clone(),
            StrategyKind::Postcopy,
            SimTime::ZERO,
        )
        .unwrap();
    let ja = b
        .migrate(a, NodeId(2), SimTime::from_secs_f64(1.0))
        .unwrap();
    let jc = b
        .migrate(c, NodeId(3), SimTime::from_secs_f64(2.0))
        .unwrap();
    let mut sim = b.build().unwrap();
    let from_builder = sim.run_until(SimTime::from_secs_f64(300.0));

    assert_eq!(from_file.events, from_builder.events);
    assert_eq!(from_file.total_traffic, from_builder.total_traffic);
    assert_eq!(from_file.migrations.len(), from_builder.migrations.len());
    for (x, y) in from_file.migrations.iter().zip(&from_builder.migrations) {
        assert_eq!(x.completed_at, y.completed_at);
        assert_eq!(x.downtime, y.downtime);
        assert_eq!(x.pushed_chunks, y.pushed_chunks);
        assert_eq!(x.pulled_chunks, y.pulled_chunks);
    }
    assert_eq!(sim.status(ja), Some(MigrationStatus::Completed));
    assert_eq!(sim.status(jc), Some(MigrationStatus::Completed));
}

// ---------------- scenarios/scale64.toml ----------------

const SCALE64: &str = include_str!("../../../scenarios/scale64.toml");

/// The checked-in paper-scale bench scenario must stay byte-identical
/// to its generator, so `lsm bench` (which defaults to the generator)
/// and `lsm bench --scenario scenarios/scale64.toml` run the same
/// experiment.
#[test]
fn scale64_file_matches_generator() {
    let expected = lsm::experiments::stress::scale64_spec()
        .to_toml()
        .expect("scenario serializes");
    assert!(
        SCALE64 == expected,
        "scenarios/scale64.toml drifted from stress::scale64_spec(); \
         regenerate with `cargo run -p lsm-experiments --example regen_scale64 \
         > scenarios/scale64.toml`"
    );
}

#[test]
fn scale64_file_parses_to_the_paper_scale_shape() {
    let spec = ScenarioSpec::from_toml(SCALE64).expect("scale64.toml parses");
    assert_eq!(spec.cluster_config().nodes, 64);
    assert_eq!(spec.vms.len(), 128);
    assert_eq!(spec.migrations.len(), 128);
}

// ---------------- scenarios/scale1024.toml ----------------

const SCALE1024: &str = include_str!("../../../scenarios/scale1024.toml");

/// The checked-in 1024-node sharded-engine scenario must stay
/// byte-identical to its generator, so `lsm bench` (which defaults to
/// the generator) and `lsm run scenarios/scale1024.toml` run the same
/// experiment.
#[test]
fn scale1024_file_matches_generator() {
    let expected = lsm::experiments::stress::scale1024_spec()
        .to_toml()
        .expect("scenario serializes");
    assert!(
        SCALE1024 == expected,
        "scenarios/scale1024.toml drifted from stress::scale1024_spec(); \
         regenerate with `cargo run -p lsm-experiments --example regen_scale1024 \
         > scenarios/scale1024.toml`"
    );
}

#[test]
fn scale1024_file_parses_to_the_fleet_shape() {
    let spec = ScenarioSpec::from_toml(SCALE1024).expect("scale1024.toml parses");
    assert_eq!(spec.cluster_config().nodes, 1024);
    assert_eq!(spec.vms.len(), 2048);
    assert_eq!(spec.migrations.len(), 2048);
}

// ---------------- scenarios/chaos_storm.toml ----------------

const CHAOS_STORM: &str = include_str!("../../../scenarios/chaos_storm.toml");

/// The checked-in chaos-storm scenario must stay byte-identical to its
/// producer, so `lsm run scenarios/chaos_storm.toml --check` replays
/// exactly the episode the resilience acceptance tests pin.
#[test]
fn chaos_storm_file_matches_generator() {
    let expected = lsm::experiments::resilience::chaos_storm_spec()
        .to_toml()
        .expect("scenario serializes");
    assert!(
        CHAOS_STORM == expected,
        "scenarios/chaos_storm.toml drifted from resilience::chaos_storm_spec(); \
         regenerate with `cargo run -p lsm-experiments --example regen_resilience`"
    );
}

#[test]
fn chaos_storm_file_parses_to_the_storm_shape() {
    let spec = ScenarioSpec::from_toml(CHAOS_STORM).expect("chaos_storm.toml parses");
    assert_eq!(spec.cluster_config().nodes, 8);
    assert_eq!(spec.vms.len(), 6);
    assert_eq!(spec.migrations.len(), 6);
    assert_eq!(spec.faults.as_ref().map(Vec::len), Some(7));
    assert_eq!(spec.cancellations.as_ref().map(Vec::len), Some(1));
    assert_eq!(spec.resilience.as_ref().unwrap().retry.max_attempts, 3);
}
