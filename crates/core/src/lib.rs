//! # lsm-core — live storage migration engine and transfer policies
//!
//! The primary contribution of the reproduced paper (Nicolae & Cappello,
//! HPDC'12): a **hybrid active push / prioritized prefetch** scheme for
//! transferring VM local storage during live migration, implemented
//! alongside the four comparison baselines on a deterministic simulated
//! cluster.
//!
//! * [`builder`] — the checked orchestration API:
//!   [`SimulationBuilder`] validates every request and returns
//!   [`EngineError`] on misuse; [`builder::Simulation`] runs the cluster
//!   and exposes per-job [`MigrationStatus`]/[`MigrationProgress`],
//!   watchable (and abortable) through an [`engine::Observer`].
//! * [`policy`] — the transfer strategies as pure, engine-free state
//!   machines: the paper's Algorithms 1–4 ([`policy::HybridSource`],
//!   [`policy::HybridDest`]) plus `precopy`, `mirror` and `postcopy`
//!   source states.
//! * [`engine`] — the event-driven simulator coupling
//!   network/disk/page-cache models, workloads, memory pre-copy and the
//!   policies. One [`engine::Engine`] per experiment run.
//! * [`config`] — cluster parameters, defaulting to the paper's
//!   Grid'5000 *graphene* testbed numbers.
//! * [`planner`] — the cluster orchestration layer: a pluggable
//!   [`planner::Planner`] decides placement, admission order (under a
//!   configurable max-concurrent cap) and — for adaptive requests —
//!   which transfer scheme to use from live per-VM I/O telemetry;
//!   high-level intents ([`planner::RequestIntent`]) express node
//!   evacuation and group rebalancing.
//! * [`autonomic`] — the closed-loop rebalancer: a periodic monitor
//!   classifying per-node I/O pressure against configurable thresholds
//!   (with hysteresis) that *originates* migrations — relieving
//!   overloaded nodes, draining underloaded ones, deferring hot-phase
//!   candidates on their windowed re-write rate until a deadline — and
//!   re-plans in-flight jobs whose destination crashes or degrades.
//!   Inert unless an [`AutonomicConfig`] is installed.
//! * [`resilience`] — the migration resilience layer: a per-job
//!   [`RetryPolicy`] with exponential backoff and *resumable* transfers
//!   (chunk versions already stamped at a surviving destination are
//!   never re-sent), stepped auto-converge guest throttling, a hard
//!   downtime limit that trades an over-budget switchover for another
//!   copy round, and clean cancellation
//!   ([`engine::Engine::cancel_migration`]) at any phase. Inert unless
//!   a [`ResilienceConfig`] is installed.
//! * [`qos`] — migration QoS shaping: per-migration bandwidth caps
//!   below the max–min NIC share, multifd-style parallel memory
//!   streams with deterministic sharding, a compression model that
//!   trades wire bytes for guest CPU, and SLA-violation accounting
//!   (downtime + degraded-throughput seconds, per job and aggregated
//!   in `RunReport.sla`). Shaping is inert unless a [`QosConfig`] is
//!   installed; the SLA accounting is always on.
//!
//! ```
//! use lsm_core::builder::SimulationBuilder;
//! use lsm_core::config::ClusterConfig;
//! use lsm_core::policy::StrategyKind;
//! use lsm_core::{MigrationStatus, NodeId};
//! use lsm_simcore::SimTime;
//! use lsm_workloads::WorkloadSpec;
//!
//! # fn main() -> Result<(), lsm_core::EngineError> {
//! let mut b = SimulationBuilder::new(ClusterConfig::small_test())?;
//! let vm = b.add_vm(
//!     NodeId(0),
//!     WorkloadSpec::SeqWrite { offset: 0, total: 16 << 20, block: 1 << 20, think_secs: 0.05 },
//!     StrategyKind::Hybrid,
//!     SimTime::ZERO,
//! )?;
//! let job = b.migrate(vm, NodeId(1), SimTime::from_secs(1))?;
//!
//! // Misuse is an error, not a panic:
//! assert!(b.migrate(vm, NodeId(1), SimTime::from_secs(2)).is_err());
//!
//! let mut sim = b.build()?;
//! let report = sim.run_until(SimTime::from_secs(120));
//! assert_eq!(sim.status(job), Some(MigrationStatus::Completed));
//! let m = report.the_migration();
//! assert!(m.completed && m.consistent == Some(true));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod autonomic;
pub mod builder;
pub mod config;
pub mod engine;
pub mod error;
pub mod parallel;
pub mod planner;
pub mod policy;
pub mod qos;
pub mod resilience;

pub use autonomic::{
    AutonomicConfig, Deferral, DeferralReason, NodeClass, RebalanceAction, RebalanceTrigger,
    ReplanReason,
};
pub use builder::{Simulation, SimulationBuilder, VmHandle};
pub use config::ClusterConfig;
pub use engine::{
    Engine, FailureReason, FaultKind, IoTelemetry, JobId, MigrationProgress, MigrationRecord,
    MigrationStatus, Observer, RunControl, RunReport, VmRecord,
};
pub use error::EngineError;
pub use lsm_hypervisor::VmId;
pub use lsm_netsim::NodeId;
pub use planner::{
    AdaptivePlanner, CostPlanner, FixedPlanner, OrchestratorConfig, Planner, PlannerDecision,
    PlannerKind, PlannerSkip, RequestIntent, SchemeEstimate, SkipReason,
};
pub use policy::StrategyKind;
pub use qos::{QosConfig, SlaJob, SlaReport};
pub use resilience::{
    AttemptReason, JobAttempt, JobResilience, ResilienceConfig, RetryOn, RetryPolicy,
};
