//! Autonomic-rebalancer scenarios: closed-loop runs where **no**
//! migration is scripted — `[[migrations]]` and `[[requests]]` are
//! empty, and every move is originated (or re-planned) by the monitor
//! in [`lsm_core::autonomic`] from observed node pressure alone.
//!
//! Two shipped scenarios (checked in under `scenarios/`, byte-identity
//! tested against these producers like the orchestration set):
//!
//! * [`hotspot_drill_spec`] — five guests stacked on node 0: two hot
//!   Zipf writers and three read-heavy mixers. The node classifies
//!   overloaded; the rebalancer relieves it one move per tick, the
//!   read-heavy guests first (their re-write flux is cold). The hot
//!   writers sit in a dirty-page phase the whole time, so each tick
//!   defers them with a typed `HotPhase` record (Baruchi-style cycle
//!   timing) — until the defer deadline forces the hottest one out
//!   anyway. Ends balanced: no node above the overload band.
//! * [`slow_drain_spec`] — an idle guest alone on node 1 while node 2
//!   hosts two steady writers. Node 1 classifies underloaded and the
//!   rebalancer drains it, consolidating the idle guest onto the
//!   *busiest* non-overloaded node — emptying node 1 instead of
//!   spreading further.
//!
//! Both run invariant-clean under `lsm run --check`, including the
//! rebalancer laws (thresholds held, no ping-pong, re-queues trace to
//! re-plans).

use crate::scenario::{ScenarioSpec, VmSpec};
use lsm_core::config::ClusterConfig;
use lsm_core::planner::{OrchestratorConfig, PlannerKind};
use lsm_core::policy::StrategyKind;
use lsm_core::AutonomicConfig;
use lsm_workloads::WorkloadSpec;

/// A dense Zipf overwriter: high busy fraction (ranks first among
/// relief candidates) and a re-write flux far above the hot-phase
/// threshold — the rebalancer must defer it, not move it.
fn hot_writer(seed: u64) -> WorkloadSpec {
    WorkloadSpec::HotspotWrite {
        offset: 0,
        region_blocks: 64,
        block: 256 * 1024,
        count: 12000,
        theta: 0.8,
        think_secs: 0.002,
        seed,
    }
}

/// A read-heavy mixer: meaningful busy fraction, negligible dirty
/// flux — the cheap thing to move off an overloaded node.
fn reader(seed: u64) -> WorkloadSpec {
    WorkloadSpec::HotspotMixed {
        offset: 0,
        region_blocks: 255,
        block: 256 * 1024,
        count: 12000,
        theta: 0.0,
        read_fraction: 0.97,
        think_secs: 0.01,
        seed,
    }
}

/// A steady moderate writer (ballast that keeps its node busiest
/// without tripping the overload band).
fn steady_writer(seed: u64) -> WorkloadSpec {
    WorkloadSpec::HotspotWrite {
        offset: 0,
        region_blocks: 64,
        block: 256 * 1024,
        count: 6000,
        theta: 0.8,
        think_secs: 0.02,
        seed,
    }
}

/// The `scenarios/hotspot_drill.toml` scenario: node 0 overloaded by
/// five stacked guests, zero scripted migrations. The monitor (2 s
/// period) originates one relief move per tick under an admission cap
/// of 2, placing with the adaptive planner; the hot-phase writers are
/// deferred with typed records until the 12 s defer deadline forces
/// the hottest out.
pub fn hotspot_drill_spec() -> ScenarioSpec {
    let vms = vec![
        VmSpec::new(0, hot_writer(11)),
        VmSpec::new(0, hot_writer(12)),
        VmSpec::new(0, reader(21)),
        VmSpec::new(0, reader(22)),
        VmSpec::new(0, reader(23)),
    ];
    ScenarioSpec {
        name: Some("hotspot_drill".to_string()),
        cluster: Some(ClusterConfig::small_test()),
        autonomic: Some(AutonomicConfig {
            interval_secs: 2.0,
            overload_pressure: 0.5,
            underload_pressure: 0.02,
            hysteresis: 0.1,
            hot_dirty_frac: 0.02,
            defer_deadline_secs: 12.0,
            cooldown_secs: 60.0,
            max_moves_per_tick: 1,
            replan_inflight: true,
            replan_limit: 2,
        }),
        orchestrator: Some(OrchestratorConfig {
            max_concurrent: Some(2),
            planner: PlannerKind::Adaptive,
            ..OrchestratorConfig::default()
        }),
        resilience: None,
        qos: None,
        strategy: StrategyKind::Hybrid,
        grouped: false,
        vms,
        migrations: vec![],
        requests: None,
        faults: None,
        cancellations: None,
        horizon_secs: 300.0,
    }
}

/// The `scenarios/slow_drain.toml` scenario: an idle guest alone on
/// node 1, two steady writers on node 2, zero scripted migrations.
/// Node 1 classifies underloaded on the first tick and the rebalancer
/// consolidates its guest onto the busiest healthy node — draining
/// node 1 empty. Runs under the default (fixed) planner: consolidation
/// picks its own destination.
pub fn slow_drain_spec() -> ScenarioSpec {
    let vms = vec![
        VmSpec::new(2, steady_writer(31)),
        VmSpec::new(2, steady_writer(32)),
        VmSpec::new(
            1,
            WorkloadSpec::Idle {
                bursts: 120,
                burst_secs: 1.0,
            },
        ),
    ];
    ScenarioSpec {
        name: Some("slow_drain".to_string()),
        cluster: Some(ClusterConfig::small_test()),
        autonomic: Some(AutonomicConfig {
            interval_secs: 2.0,
            overload_pressure: 0.5,
            underload_pressure: 0.05,
            hysteresis: 0.05,
            hot_dirty_frac: 0.02,
            defer_deadline_secs: 12.0,
            cooldown_secs: 60.0,
            max_moves_per_tick: 1,
            replan_inflight: true,
            replan_limit: 2,
        }),
        orchestrator: None,
        resilience: None,
        qos: None,
        strategy: StrategyKind::Hybrid,
        grouped: false,
        vms,
        migrations: vec![],
        requests: None,
        faults: None,
        cancellations: None,
        horizon_secs: 240.0,
    }
}

/// All shipped autonomic scenarios with their `scenarios/` file names.
pub fn all() -> Vec<(&'static str, ScenarioSpec)> {
    vec![
        ("hotspot_drill.toml", hotspot_drill_spec()),
        ("slow_drain.toml", slow_drain_spec()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsm_core::{DeferralReason, RebalanceTrigger};

    #[test]
    fn shapes_are_consistent() {
        for (_, spec) in all() {
            assert!(spec.migrations.is_empty(), "nothing is scripted");
            assert!(spec.requests.is_none(), "nothing is scripted");
            assert!(spec.autonomic.is_some(), "the monitor drives the run");
            let back = ScenarioSpec::from_toml(&spec.to_toml().expect("toml")).expect("parses");
            assert_eq!(back, spec);
        }
    }

    /// The drill's closed loop, end to end: the overloaded node is
    /// relieved purely by rebalancer-originated moves, the hot-phase
    /// writers are observably deferred with typed records, and the
    /// defer deadline eventually forces a hot one out too.
    #[test]
    fn hotspot_drill_relieves_and_defers() {
        let spec = hotspot_drill_spec();
        let report = crate::scenario::run_scenario(&spec).expect("runs");
        // Every migration in the report was originated by the monitor.
        assert!(
            !report.migrations.is_empty(),
            "the rebalancer must originate moves"
        );
        for m in &report.migrations {
            assert!(m.completed, "vm {} move incomplete", m.vm);
        }
        let overloads: Vec<_> = report
            .rebalance
            .iter()
            .filter(|a| matches!(a.trigger, RebalanceTrigger::Overload { node: 0, .. }))
            .collect();
        assert!(!overloads.is_empty(), "node 0 must classify overloaded");
        // The hot writers (vms 0 and 1) are deferred as hot-phase...
        let deferred_hot = |vm: u32| {
            overloads.iter().any(|a| {
                a.deferrals
                    .iter()
                    .any(|d| d.vm == vm && matches!(d.reason, DeferralReason::HotPhase { .. }))
            })
        };
        assert!(deferred_hot(0) && deferred_hot(1), "{overloads:?}");
        // ...while the cold readers move first...
        let first_moved = overloads
            .iter()
            .find_map(|a| a.chosen)
            .expect("some relief move");
        assert!(
            first_moved >= 2,
            "a reader moves first, got vm {first_moved}"
        );
        // ...and the defer deadline eventually forces a hot writer out.
        let hot_moved_at = report
            .rebalance
            .iter()
            .find(|a| a.chosen.is_some_and(|v| v < 2))
            .expect("a hot writer is eventually moved");
        let hot_deferred_at = report
            .rebalance
            .iter()
            .find(|a| {
                a.deferrals
                    .iter()
                    .any(|d| matches!(d.reason, DeferralReason::HotPhase { .. }))
            })
            .expect("checked above");
        assert!(
            hot_deferred_at.at < hot_moved_at.at,
            "deferral must precede the forced move"
        );
    }

    /// The drain: node 1's lone idle guest is consolidated onto the
    /// busiest node by an underload-triggered move.
    #[test]
    fn slow_drain_consolidates_the_idle_guest() {
        let spec = slow_drain_spec();
        let report = crate::scenario::run_scenario(&spec).expect("runs");
        let drain = report
            .rebalance
            .iter()
            .find(|a| matches!(a.trigger, RebalanceTrigger::Underload { node: 1, .. }))
            .expect("node 1 must classify underloaded");
        assert_eq!(drain.chosen, Some(2), "the idle guest is the candidate");
        assert_eq!(drain.dest, Some(2), "consolidated onto the busiest node");
        let m = report
            .migrations
            .iter()
            .find(|m| m.vm == 2)
            .expect("originated move recorded");
        assert!(m.completed);
    }
}
