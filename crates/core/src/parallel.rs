//! The sharded parallel runner: many independent shard engines stepped
//! in bounded time windows on a worker-thread pool, merged into one
//! [`RunReport`] that is **bit-identical** to the monolithic engine's.
//!
//! # Execution model
//!
//! A *shard* is a complete [`Engine`] over one connected component of
//! the scenario's migration graph (nodes joined by a migration, plus
//! every VM they host). Components share no links, no disks, no chunk
//! stores and — on the decoupled fabrics the partitioner admits — never
//! contend on the switch aggregate, so their event streams are causally
//! independent: each shard owns its nodes' event sub-queue, guest
//! compute/dirty-rate updates, and the node-local flow state outright.
//!
//! Shards advance in bounded time windows. Within a window every shard
//! steps its own events with [`Engine::step_until`]; at the window
//! barrier the runner performs the one *shared* piece of accounting,
//! the switch aggregate: the summed flow rate across all shards must
//! fit the fabric's switch capacity (on an admitted fabric it provably
//! does — the barrier check is the runtime witness of that proof).
//!
//! # Determinism
//!
//! The shard structure is a pure function of the scenario — never of
//! the thread count. Threads only *execute* shards: a work-stealing
//! index hands each shard to whichever worker is free, and since shards
//! exchange nothing mid-window, execution order cannot influence any
//! shard's state. Cross-shard outputs meet only in the merge, which
//! orders every record by global identity and time — migrations and
//! VMs by their global index, planner decisions by `(decided_at, job)`
//! (exactly the `(time, sequence)` order the monolithic event loop
//! admits them in), traffic by integer per-shard counters whose sum is
//! order-independent. The result: byte-identical serialized reports for
//! any thread count, including the monolithic single-threaded engine —
//! pinned by `lsm`'s determinism suite at `--threads 1/2/8` under both
//! solver modes.

use crate::engine::{
    Engine, MigrationRecord, NullObserver, Observer, RunControl, RunReport, VmRecord,
};
use lsm_netsim::TrafficTag;
use lsm_simcore::time::{SimDuration, SimTime};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One shard: a complete engine over one migration-graph component,
/// plus the maps back to global identity (the merge's vocabulary).
pub struct Shard {
    /// The shard's engine, built over the component's nodes re-indexed
    /// densely in ascending global order (which preserves the
    /// monolithic solver's lowest-index tie-breaks).
    pub engine: Engine,
    /// Shard-local VM index → global VM index.
    pub vms: Vec<u32>,
    /// Shard-local migration-job index → global job index.
    pub jobs: Vec<u32>,
    /// Shard-local node index → global node index.
    pub nodes: Vec<u32>,
}

/// Global fleet dimensions the merged report must cover.
#[derive(Clone, Copy, Debug)]
pub struct FleetShape {
    /// Total VMs in the scenario.
    pub vms: u32,
    /// Total migration jobs in the scenario.
    pub jobs: u32,
    /// The fabric's switch aggregate capacity (bytes/second) — the one
    /// shared resource, audited at every window barrier.
    pub switch_capacity: f64,
}

/// Knobs of the sharded runner.
#[derive(Clone, Copy, Debug)]
pub struct ParallelOpts {
    /// Worker threads. `1` still runs the sharded path (the caller
    /// chooses monolithic vs sharded); values are clamped to the shard
    /// count.
    pub threads: usize,
    /// Window length in simulated seconds between barriers.
    pub window_secs: f64,
}

impl Default for ParallelOpts {
    fn default() -> Self {
        ParallelOpts {
            threads: available_threads(),
            window_secs: 5.0,
        }
    }
}

/// The machine's available parallelism (1 if unknown).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run `shards` to `horizon` and merge the results. Convenience wrapper
/// of [`run_sharded_observed`] with null observers, discarding the
/// finished shard engines.
pub fn run_sharded(
    shards: Vec<Shard>,
    shape: FleetShape,
    horizon: SimTime,
    opts: ParallelOpts,
) -> RunReport {
    let observers = shards.iter().map(|_| NullObserver).collect();
    run_sharded_observed(shards, observers, shape, horizon, opts).0
}

/// Run every shard to `horizon` in bounded windows on `opts.threads`
/// workers, with one observer per shard (`observers[i]` watches
/// `shards[i]` — e.g. a per-shard invariant checker), and merge the
/// shard reports into the fleet-wide [`RunReport`]. Returns the merged
/// report and the finished `(shard, observer)` pairs so callers can
/// audit per-shard state (`lsm run --check` finalizes each checker
/// against its shard engine).
///
/// If any observer stops its shard, the remaining shards halt at the
/// next window barrier and the merged report reflects the partial run.
pub fn run_sharded_observed<O: Observer + Send>(
    mut shards: Vec<Shard>,
    observers: Vec<O>,
    shape: FleetShape,
    horizon: SimTime,
    opts: ParallelOpts,
) -> (RunReport, Vec<(Shard, O)>) {
    assert_eq!(shards.len(), observers.len(), "one observer per shard");
    for s in &mut shards {
        s.engine.enable_load_log();
    }
    let threads = opts.threads.clamp(1, shards.len().max(1));
    let window_secs = if opts.window_secs.is_finite() && opts.window_secs > 0.0 {
        opts.window_secs
    } else {
        5.0
    };
    // (shard, observer, stopped) per slot; a Mutex per slot lets idle
    // workers steal whichever shard is next without partitioning.
    let slots: Vec<Mutex<(Shard, O, bool)>> = shards
        .into_iter()
        .zip(observers)
        .map(|(s, o)| Mutex::new((s, o, false)))
        .collect();
    let mut windows = 0u64;
    let mut t_end = SimTime::ZERO;
    let mut any_stopped = false;
    while t_end < horizon && !any_stopped {
        windows += 1;
        let next = SimTime::ZERO + SimDuration::from_secs_f64(window_secs).mul_f64(windows as f64);
        t_end = next.min(horizon);
        if threads == 1 {
            for slot in &slots {
                let (shard, obs, stopped) = &mut *slot.lock().expect("shard lock");
                if !*stopped {
                    *stopped = shard.engine.step_until(t_end, obs) == RunControl::Stop;
                }
            }
        } else {
            let claim = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|| loop {
                        let i = claim.fetch_add(1, Ordering::Relaxed);
                        let Some(slot) = slots.get(i) else { break };
                        let (shard, obs, stopped) = &mut *slot.lock().expect("shard lock");
                        if !*stopped {
                            *stopped = shard.engine.step_until(t_end, obs) == RunControl::Stop;
                        }
                    });
                }
            });
        }
        // Window barrier: the switch aggregate is the only resource
        // shards share. Sum the live rate every shard is pushing and
        // hold it against the fabric's switch capacity — on a fabric
        // the partitioner admitted (switch ≥ 2× summed NIC capacity)
        // this cannot bind, and a violation means the partition was
        // unsound, which is a bug worth dying loudly for.
        let mut switch_load = 0.0f64;
        for slot in &slots {
            let (shard, _, stopped) = &*slot.lock().expect("shard lock");
            switch_load += shard.engine.network().rate_total();
            any_stopped |= *stopped;
        }
        assert!(
            switch_load <= shape.switch_capacity * (1.0 + 1e-9) + 1.0,
            "window barrier: summed shard rate {switch_load} B/s exceeds \
             the switch aggregate {} B/s — unsound partition",
            shape.switch_capacity
        );
    }
    let mut finished = Vec::with_capacity(slots.len());
    let mut reports = Vec::with_capacity(slots.len());
    for slot in slots {
        let (mut shard, obs, stopped) = slot.into_inner().expect("shard lock");
        reports.push(shard.engine.finish_run(horizon, stopped));
        finished.push((shard, obs));
    }
    let merged = merge_reports(&finished, &reports, &shape, horizon);
    (merged, finished)
}

/// Merge per-shard reports into the fleet-wide report, every record
/// re-keyed to global identity. See the module docs for why each field
/// is bit-identical to the monolithic engine's.
fn merge_reports<O>(
    shards: &[(Shard, O)],
    reports: &[RunReport],
    shape: &FleetShape,
    horizon: SimTime,
) -> RunReport {
    let mut migrations: Vec<Option<MigrationRecord>> = vec![None; shape.jobs as usize];
    let mut vms: Vec<Option<VmRecord>> = vec![None; shape.vms as usize];
    let mut sla_jobs: Vec<Option<crate::qos::SlaJob>> = vec![None; shape.jobs as usize];
    let mut planner = Vec::new();
    let mut horizon_seen = horizon;
    for ((shard, _), rep) in shards.iter().zip(reports) {
        horizon_seen = horizon_seen.max(rep.horizon);
        debug_assert!(
            rep.planner_skips.is_empty() && rep.rebalance.is_empty() && rep.resilience.is_empty(),
            "the partitioner only admits scenarios without orchestrated \
             intents, rebalancing or resilience state"
        );
        for (local, rec) in rep.migrations.iter().enumerate() {
            let mut rec = rec.clone();
            rec.vm = shard.vms[rec.vm as usize];
            migrations[shard.jobs[local] as usize] = Some(rec);
        }
        for rec in &rep.vms {
            let mut rec = rec.clone();
            let global = shard.vms[rec.vm as usize];
            rec.vm = global;
            rec.final_host = shard.nodes[rec.final_host as usize];
            vms[global as usize] = Some(rec);
        }
        for job in &rep.sla.jobs {
            let mut job = *job;
            job.job = shard.jobs[job.job as usize];
            job.vm = shard.vms[job.vm as usize];
            sla_jobs[job.job as usize] = Some(job);
        }
        for dec in &rep.planner {
            let mut dec = dec.clone();
            debug_assert!(
                dec.request.is_none(),
                "orchestrated requests are not shardable"
            );
            dec.job = shard.jobs[dec.job as usize];
            dec.vm = shard.vms[dec.vm as usize];
            dec.source = shard.nodes[dec.source as usize];
            dec.dest = shard.nodes[dec.dest as usize];
            planner.push(dec);
        }
    }
    // Admission order: the monolithic loop pops equal-time
    // `MigrationStart` events in schedule order — ascending job index —
    // and each admits synchronously, so `(decided_at, job)` is exactly
    // its decision order.
    planner.sort_by_key(|d| (d.decided_at, d.job));
    let traffic: Vec<(TrafficTag, u64)> = TrafficTag::ALL
        .iter()
        .map(|&t| (t, reports.iter().map(|r| r.traffic_for(t)).sum()))
        .collect();
    let logs: Vec<&[(SimTime, u32)]> = shards
        .iter()
        .map(|(s, _)| s.engine.network().load_log())
        .collect();
    RunReport {
        horizon: horizon_seen,
        migrations: migrations
            .into_iter()
            .map(|m| m.expect("partition covers every migration job"))
            .collect(),
        vms: vms
            .into_iter()
            .map(|v| v.expect("partition covers every VM"))
            .collect(),
        planner,
        planner_skips: Vec::new(),
        rebalance: Vec::new(),
        resilience: Vec::new(),
        sla: crate::qos::SlaReport::from_jobs(
            sla_jobs
                .into_iter()
                .map(|j| j.expect("partition covers every SLA row"))
                .collect(),
        ),
        traffic,
        total_traffic: reports.iter().map(|r| r.total_traffic).sum(),
        migration_traffic: reports.iter().map(|r| r.migration_traffic).sum(),
        events: reports.iter().map(|r| r.events).sum(),
        peak_flows: merged_peak(&logs, horizon_seen) as u64,
    }
}

/// Reconstruct the global concurrent-flow peak from per-shard
/// changepoint logs: a k-way sweep over `(time, count)` entries, taking
/// the summed count at the end of every instant at which any shard's
/// flow set changed. This reproduces the monolithic engine's
/// end-of-instant sampling exactly — including its blind spot for an
/// instant coinciding with the horizon, which no later advance samples.
fn merged_peak(logs: &[&[(SimTime, u32)]], horizon: SimTime) -> usize {
    let mut idx = vec![0usize; logs.len()];
    let mut cur = vec![0u64; logs.len()];
    let mut total = 0u64;
    let mut peak = 0u64;
    while let Some(t) = logs
        .iter()
        .zip(&idx)
        .filter_map(|(log, &i)| log.get(i).map(|e| e.0))
        .min()
    {
        for (k, log) in logs.iter().enumerate() {
            while idx[k] < log.len() && log[idx[k]].0 == t {
                let n = log[idx[k]].1 as u64;
                total = total - cur[k] + n;
                cur[k] = n;
                idx[k] += 1;
            }
        }
        if t < horizon {
            peak = peak.max(total);
        }
    }
    peak as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn merged_peak_sums_concurrent_shards() {
        // Shard A: 1 flow during [0, 10), Shard B: 2 flows during [5, 8).
        let a: Vec<(SimTime, u32)> = vec![(t(0.0), 1), (t(10.0), 0)];
        let b: Vec<(SimTime, u32)> = vec![(t(5.0), 2), (t(8.0), 0)];
        assert_eq!(merged_peak(&[&a, &b], t(100.0)), 3);
    }

    #[test]
    fn merged_peak_ignores_instants_at_the_horizon() {
        // A changepoint exactly at the horizon is never sampled by the
        // monolithic engine either.
        let a: Vec<(SimTime, u32)> = vec![(t(0.0), 1), (t(10.0), 5)];
        assert_eq!(merged_peak(&[&a], t(10.0)), 1);
        assert_eq!(merged_peak(&[&a], t(11.0)), 5);
    }
}
