//! Property-based tests for the max–min fair flow network.
//!
//! These drive random sequences of flow starts / cancellations /
//! completions through [`FlowNet`] and check the classic max–min
//! invariants plus byte conservation.

use lsm_netsim::{FlowId, FlowNet, NodeId, Topology, TrafficTag};
use lsm_simcore::units::{mb_per_s, MIB};
use lsm_simcore::SimTime;
use proptest::prelude::*;
use std::collections::BTreeMap;

const NODES: usize = 8;
const NIC: f64 = 100.0; // MB/s
const SWITCH: f64 = 350.0; // MB/s, deliberately constraining

fn topo() -> Topology {
    Topology::symmetric(NODES, mb_per_s(NIC), mb_per_s(SWITCH))
}

#[derive(Debug, Clone)]
enum Op {
    Start {
        src: u32,
        dst: u32,
        mib: u64,
        cap: Option<f64>,
    },
    CancelOldest,
    RunToNextCompletion,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u32..NODES as u32, 0u32..NODES as u32, 1u64..64, prop::option::of(5.0f64..120.0))
            .prop_map(|(src, dst, mib, cap)| Op::Start {
                src,
                dst,
                mib,
                cap: cap.map(mb_per_s),
            }),
        1 => Just(Op::CancelOldest),
        2 => Just(Op::RunToNextCompletion),
    ]
}

/// Check the max–min fairness conditions on the *current* allocation:
///  1. No resource is oversubscribed.
///  2. Every flow is either at its own cap or has a bottleneck resource
///     that is saturated and on which no other flow gets a higher rate.
fn check_maxmin(net: &FlowNet, live: &BTreeMap<FlowId, (u32, u32, Option<f64>)>) {
    const EPS: f64 = 1e-3;
    let mut up = [0.0f64; NODES];
    let mut down = [0.0f64; NODES];
    let mut agg = 0.0f64;
    for (&id, &(src, dst, cap)) in live {
        let r = net.rate_of(id).expect("live flow has a rate");
        assert!(r >= -EPS, "negative rate");
        if let Some(c) = cap {
            assert!(r <= c * (1.0 + EPS) + 1.0, "rate {r} exceeds cap {c}");
        }
        up[src as usize] += r;
        down[dst as usize] += r;
        agg += r;
    }
    for (i, &u) in up.iter().enumerate() {
        assert!(
            u <= mb_per_s(NIC) * (1.0 + EPS) + 1.0,
            "uplink {i} oversubscribed: {u}"
        );
    }
    for (i, &d) in down.iter().enumerate() {
        assert!(
            d <= mb_per_s(NIC) * (1.0 + EPS) + 1.0,
            "downlink {i} oversubscribed: {d}"
        );
    }
    assert!(
        agg <= mb_per_s(SWITCH) * (1.0 + EPS) + 1.0,
        "switch oversubscribed: {agg}"
    );

    // Bottleneck condition.
    for (&id, &(src, dst, cap)) in live {
        let r = net.rate_of(id).unwrap();
        if let Some(c) = cap {
            if r >= c * (1.0 - EPS) - 1.0 {
                continue; // capped flow: fine
            }
        }
        let max_on = |total: f64, capacity: f64, peers: &dyn Fn() -> f64| -> bool {
            // resource saturated and this flow is (one of) the largest on it
            total >= capacity * (1.0 - EPS) - 1.0 && r >= peers() * (1.0 - EPS) - 1.0
        };
        let peers_up = || {
            live.iter()
                .filter(|(_, &(s, _, _))| s == src)
                .map(|(fid, _)| net.rate_of(*fid).unwrap())
                .fold(0.0, f64::max)
        };
        let peers_down = || {
            live.iter()
                .filter(|(_, &(_, d, _))| d == dst)
                .map(|(fid, _)| net.rate_of(*fid).unwrap())
                .fold(0.0, f64::max)
        };
        let peers_all = || {
            live.keys()
                .map(|fid| net.rate_of(*fid).unwrap())
                .fold(0.0, f64::max)
        };
        let ok = max_on(up[src as usize], mb_per_s(NIC), &peers_up)
            || max_on(down[dst as usize], mb_per_s(NIC), &peers_down)
            || max_on(agg, mb_per_s(SWITCH), &peers_all);
        assert!(
            ok,
            "flow {id:?} (rate {r:.1}) has no saturated bottleneck where it is maximal"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn maxmin_invariants_hold_under_churn(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let mut net = FlowNet::new(topo());
        let mut now = SimTime::ZERO;
        let mut live: BTreeMap<FlowId, (u32, u32, Option<f64>)> = BTreeMap::new();
        let mut requested: BTreeMap<FlowId, u64> = BTreeMap::new();
        let mut finished_bytes = 0u64;
        let mut cancelled_partial = 0u64;

        for op in ops {
            match op {
                Op::Start { src, dst, mib, cap } => {
                    if src == dst { continue; }
                    let id = net.start_flow(now, NodeId(src), NodeId(dst), mib * MIB, cap, TrafficTag::StoragePush);
                    live.insert(id, (src, dst, cap));
                    requested.insert(id, mib * MIB);
                }
                Op::CancelOldest => {
                    if let Some((&id, _)) = live.iter().next() {
                        let left = net.cancel_flow(now, id).unwrap();
                        let req = requested.remove(&id).unwrap();
                        prop_assert!(left <= req + 1);
                        cancelled_partial += req - left.min(req);
                        live.remove(&id);
                    }
                }
                Op::RunToNextCompletion => {
                    if let Some((t, id)) = net.next_completion() {
                        if t == SimTime::FAR_FUTURE { continue; }
                        now = t;
                        net.complete(now, id);
                        finished_bytes += requested.remove(&id).unwrap();
                        live.remove(&id);
                    }
                }
            }
            check_maxmin(&net, &live);
        }

        // Conservation: everything delivered is either a finished flow,
        // the delivered part of a cancelled flow, or in-flight progress.
        net.advance(now);
        let in_flight_progress: u64 = live.keys()
            .map(|id| requested[id] - net.remaining_of(*id).unwrap().min(requested[id]))
            .sum();
        let accounted = finished_bytes + cancelled_partial + in_flight_progress;
        let delivered = net.total_delivered();
        let diff = delivered.abs_diff(accounted);
        prop_assert!(diff <= 4 * (finished_bytes / MIB + 16), "conservation violated: delivered={delivered} accounted={accounted}");
    }

    #[test]
    fn completions_are_deterministic(seeds in prop::collection::vec(0u32..NODES as u32, 4..20)) {
        // Build the same flow pattern twice; completion order must match exactly.
        let build = |seeds: &[u32]| {
            let mut net = FlowNet::new(topo());
            for (i, &s) in seeds.iter().enumerate() {
                let dst = (s + 1) % NODES as u32;
                net.start_flow(SimTime::ZERO, NodeId(s), NodeId(dst), (i as u64 + 1) * MIB, None, TrafficTag::Memory);
            }
            let mut order = Vec::new();
            while let Some((t, id)) = net.next_completion() {
                net.complete(t, id);
                order.push((t, id));
            }
            order
        };
        prop_assert_eq!(build(&seeds), build(&seeds));
    }

    #[test]
    fn single_flow_rate_is_min_of_constraints(cap in prop::option::of(1.0f64..200.0)) {
        let mut net = FlowNet::new(topo());
        let f = net.start_flow(SimTime::ZERO, NodeId(0), NodeId(1), 64 * MIB, cap.map(mb_per_s), TrafficTag::Memory);
        let expect = mb_per_s(cap.unwrap_or(NIC).min(NIC));
        let got = net.rate_of(f).unwrap();
        prop_assert!((got - expect).abs() < 1.0, "got {got}, expected {expect}");
    }
}
