//! Chunk identifiers and dense chunk sets.
//!
//! A disk image is divided into fixed-size chunks (the paper uses 256 KB
//! stripes). All transfer bookkeeping ([`crate::vdisk::VirtualDisk`],
//! RemainingSet, ModifiedSet, …) works at chunk granularity, so the set
//! type is a dense bitset: O(1) membership, cache-friendly iteration, and
//! cheap set algebra over tens of thousands of chunks.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a chunk within a virtual disk.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct ChunkId(pub u32);

impl ChunkId {
    /// The chunk index as a usize.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Convert a byte range into the inclusive range of chunks it touches.
///
/// Returns `(first_chunk, last_chunk, first_is_partial, last_is_partial)`.
/// Partial-chunk information matters because a partial write to an
/// untouched base chunk forces a read-modify-write fetch from the
/// repository (§4.2).
pub fn byte_range_to_chunks(
    offset: u64,
    len: u64,
    chunk_size: u64,
) -> (ChunkId, ChunkId, bool, bool) {
    assert!(len > 0, "empty I/O range");
    assert!(chunk_size > 0);
    let first = offset / chunk_size;
    let end = offset + len; // exclusive
    let last = (end - 1) / chunk_size;
    let first_partial = !offset.is_multiple_of(chunk_size);
    let last_partial = !end.is_multiple_of(chunk_size);
    (
        ChunkId(first as u32),
        ChunkId(last as u32),
        first_partial,
        last_partial,
    )
}

/// A dense bitset over chunk ids.
#[derive(Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ChunkSet {
    words: Vec<u64>,
    len: u32,
    count: u32,
}

impl ChunkSet {
    /// An empty set sized for `len` chunks.
    pub fn new(len: u32) -> Self {
        ChunkSet {
            words: vec![0; (len as usize).div_ceil(64)],
            len,
            count: 0,
        }
    }

    /// Set capacity in chunks.
    pub fn capacity(&self) -> u32 {
        self.len
    }

    /// Number of chunks in the set.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// True if no chunk is present.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Test membership.
    #[inline]
    pub fn contains(&self, c: ChunkId) -> bool {
        debug_assert!(c.0 < self.len, "chunk {} out of range {}", c.0, self.len);
        self.words[c.idx() / 64] & (1u64 << (c.idx() % 64)) != 0
    }

    /// Insert a chunk; returns true if newly inserted.
    #[inline]
    pub fn insert(&mut self, c: ChunkId) -> bool {
        debug_assert!(c.0 < self.len);
        let w = &mut self.words[c.idx() / 64];
        let m = 1u64 << (c.idx() % 64);
        if *w & m == 0 {
            *w |= m;
            self.count += 1;
            true
        } else {
            false
        }
    }

    /// Remove a chunk; returns true if it was present.
    #[inline]
    pub fn remove(&mut self, c: ChunkId) -> bool {
        debug_assert!(c.0 < self.len);
        let w = &mut self.words[c.idx() / 64];
        let m = 1u64 << (c.idx() % 64);
        if *w & m != 0 {
            *w &= !m;
            self.count -= 1;
            true
        } else {
            false
        }
    }

    /// Remove and return the lowest-indexed chunk.
    pub fn pop_first(&mut self) -> Option<ChunkId> {
        for (wi, w) in self.words.iter_mut().enumerate() {
            if *w != 0 {
                let bit = w.trailing_zeros();
                *w &= !(1u64 << bit);
                self.count -= 1;
                return Some(ChunkId((wi as u32) * 64 + bit));
            }
        }
        None
    }

    /// Iterate chunks in increasing index order.
    pub fn iter(&self) -> impl Iterator<Item = ChunkId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros();
                    bits &= bits - 1;
                    Some(ChunkId((wi as u32) * 64 + b))
                }
            })
        })
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &ChunkSet) {
        assert_eq!(self.len, other.len, "set size mismatch");
        let mut count = 0u32;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
            count += a.count_ones();
        }
        self.count = count;
    }

    /// In-place difference (`self -= other`).
    pub fn subtract(&mut self, other: &ChunkSet) {
        assert_eq!(self.len, other.len, "set size mismatch");
        let mut count = 0u32;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !*b;
            count += a.count_ones();
        }
        self.count = count;
    }

    /// Remove every chunk.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.count = 0;
    }

    /// Build a set from an iterator of chunks.
    pub fn from_iter(len: u32, iter: impl IntoIterator<Item = ChunkId>) -> Self {
        let mut s = ChunkSet::new(len);
        for c in iter {
            s.insert(c);
        }
        s
    }
}

impl fmt::Debug for ChunkSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ChunkSet({}/{})", self.count, self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = ChunkSet::new(200);
        assert!(s.insert(ChunkId(5)));
        assert!(!s.insert(ChunkId(5)));
        assert!(s.contains(ChunkId(5)));
        assert!(!s.contains(ChunkId(6)));
        assert_eq!(s.count(), 1);
        assert!(s.remove(ChunkId(5)));
        assert!(!s.remove(ChunkId(5)));
        assert!(s.is_empty());
    }

    #[test]
    fn iteration_in_order() {
        let mut s = ChunkSet::new(300);
        for c in [255u32, 0, 64, 63, 299, 128] {
            s.insert(ChunkId(c));
        }
        let got: Vec<u32> = s.iter().map(|c| c.0).collect();
        assert_eq!(got, vec![0, 63, 64, 128, 255, 299]);
    }

    #[test]
    fn pop_first_drains_in_order() {
        let mut s = ChunkSet::new(128);
        s.insert(ChunkId(100));
        s.insert(ChunkId(2));
        assert_eq!(s.pop_first(), Some(ChunkId(2)));
        assert_eq!(s.pop_first(), Some(ChunkId(100)));
        assert_eq!(s.pop_first(), None);
    }

    #[test]
    fn set_algebra() {
        let mut a = ChunkSet::from_iter(100, [1, 2, 3].map(ChunkId));
        let b = ChunkSet::from_iter(100, [3, 4].map(ChunkId));
        a.union_with(&b);
        assert_eq!(a.count(), 4);
        a.subtract(&b);
        assert_eq!(a.iter().map(|c| c.0).collect::<Vec<_>>(), vec![1, 2]);
        a.clear();
        assert!(a.is_empty());
    }

    #[test]
    fn byte_ranges() {
        let ck = 256 * 1024u64;
        // Aligned full chunk.
        assert_eq!(
            byte_range_to_chunks(0, ck, ck),
            (ChunkId(0), ChunkId(0), false, false)
        );
        // Spanning two chunks, both partial.
        assert_eq!(
            byte_range_to_chunks(ck / 2, ck, ck),
            (ChunkId(0), ChunkId(1), true, true)
        );
        // Large aligned write.
        assert_eq!(
            byte_range_to_chunks(ck * 4, ck * 8, ck),
            (ChunkId(4), ChunkId(11), false, false)
        );
        // Sub-chunk write.
        assert_eq!(
            byte_range_to_chunks(ck * 2 + 100, 10, ck),
            (ChunkId(2), ChunkId(2), true, true)
        );
    }

    #[test]
    #[should_panic(expected = "empty I/O")]
    fn empty_range_rejected() {
        let _ = byte_range_to_chunks(0, 0, 4096);
    }
}
