//! The migration engine: a deterministic event loop coupling the network,
//! disks, page caches, workloads, the hypervisor's memory migration, and
//! the storage transfer policies.
//!
//! The engine is strategy-agnostic where the paper's design is
//! (§4.1 "transparency"): workloads and the memory migration never know
//! which storage transfer policy is active; policies only see chunk-level
//! reads/writes and the `sync` moment, exactly like the FUSE-based
//! migration manager of §4.4.

mod fault;
mod io;
mod job;
mod migration;
mod observer;
mod orchestrator;
mod pvfs;
mod qos;
mod rebalance;
mod report;
mod resilient;
mod types;

pub use job::{FailureReason, JobId, MigrationProgress, MigrationStatus};
pub use lsm_simcore::fault::FaultKind;
pub use observer::{NullObserver, Observer, RecordingObserver, RunControl};
pub use orchestrator::IoTelemetry;
pub use report::{MigrationRecord, Milestone, RunReport, VmRecord};

use orchestrator::{JobEvent, JobEventKind, JobRt, OrchestratorRt};

use crate::config::ClusterConfig;
use crate::error::EngineError;
use crate::policy::StrategyKind;
use lsm_blockdev::{CacheConfig, ChunkStore, PageCache, VirtualDisk};
use lsm_hypervisor::{Vm, VmId, VmState};
use lsm_netsim::{FlowId, FlowNet, NodeId, Topology, TrafficTag};
use lsm_repo::{PvfsConfig, PvfsFs, RepoConfig, StripedRepo};
use lsm_simcore::resource::SharedResource;
use lsm_simcore::time::{SimDuration, SimTime};
use lsm_simcore::{EventId, EventQueue};
use lsm_workloads::{Action, ActionToken, WorkloadSpec};
use std::collections::HashMap;
use types::*;

/// The simulation engine. Build one per experiment run.
pub struct Engine {
    cfg: ClusterConfig,
    now: SimTime,
    queue: EventQueue<Ev>,
    net: FlowNet,
    net_wake: Option<(EventId, SimTime)>,
    flow_ctx: HashMap<FlowId, FlowCtx>,
    nodes: Vec<NodeRt>,
    vms: Vec<VmRt>,
    groups: Vec<GroupRt>,
    repo: StripedRepo,
    pvfs: PvfsFs,
    ops: HashMap<OpId, OpRt>,
    next_op: OpId,
    /// Migration jobs in scheduling order (JobId is the index).
    jobs: Vec<JobRt>,
    /// Job status changes / milestones awaiting observer delivery.
    job_events: Vec<JobEvent>,
    /// Downtime-resume bookkeeping: events processed count (progress
    /// guard against event-loop livelock in buggy configurations).
    events_processed: u64,
    /// Payloads of scheduled fault events, indexed by `Ev::Fault` (fault
    /// kinds carry floats, which the `Eq`-requiring queue cannot hold).
    faults: Vec<FaultKind>,
    /// Orchestration state: the planner, the admission-controlled
    /// request queue, telemetry, and recorded decisions (see the
    /// `orchestrator` module).
    orch: OrchestratorRt,
    /// Autonomic rebalancer state (`None` — the default — leaves the
    /// monitor loop off and the event stream untouched; see the
    /// `rebalance` module).
    autonomic: Option<rebalance::AutonomicRt>,
    /// Resilience-layer state (`None` — the default — leaves retries,
    /// auto-converge, and the downtime limit off and the event stream
    /// untouched; see the `resilient` module).
    resilience: Option<resilient::ResilienceRt>,
    /// Migration QoS state (`None` — the default — leaves flow caps,
    /// stream counts and wire bytes at their historical values and the
    /// event stream untouched; see the `qos` module).
    qos: Option<qos::QosRt>,
}

impl Engine {
    /// Build an engine over a fresh cluster.
    ///
    /// # Errors
    /// [`EngineError::InvalidConfig`] when the configuration is unusable
    /// (zero nodes, non-positive capacities, chunk size not dividing the
    /// image, ...).
    pub fn new(cfg: ClusterConfig) -> Result<Self, EngineError> {
        cfg.validate()?;
        let topo = Topology::symmetric(cfg.nodes as usize, cfg.nic_bw, cfg.switch_bw)
            .with_latency(cfg.net_latency);
        let net = FlowNet::new(topo);
        let nodes = (0..cfg.nodes)
            .map(|_| NodeRt {
                crashed: false,
                disk: SharedResource::new(cfg.disk_bw),
                cache_rd: SharedResource::new(cfg.cache_read_bw),
                cache_wr: SharedResource::new(cfg.cache_write_bw),
                ingest_backlog: 0,
                ingest_inflight: 0,
                disk_wake: None,
                cache_rd_wake: None,
                cache_wr_wake: None,
                disk_ctx: HashMap::new(),
                cache_rd_ctx: HashMap::new(),
                cache_wr_ctx: HashMap::new(),
            })
            .collect();
        let repo = StripedRepo::new(RepoConfig::over_nodes(
            cfg.nodes,
            cfg.repo_replication,
            cfg.chunk_size,
        ));
        let pvfs = PvfsFs::new(
            PvfsConfig::over_nodes(cfg.nodes)
                .with_op_overhead(cfg.pvfs_op_overhead)
                .with_write_overhead(cfg.pvfs_write_overhead),
        );
        Ok(Engine {
            cfg,
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            net,
            net_wake: None,
            flow_ctx: HashMap::new(),
            nodes,
            vms: Vec::new(),
            groups: Vec::new(),
            repo,
            pvfs,
            ops: HashMap::new(),
            next_op: 0,
            jobs: Vec::new(),
            job_events: Vec::new(),
            events_processed: 0,
            faults: Vec::new(),
            orch: OrchestratorRt::default(),
            autonomic: None,
            resilience: None,
            qos: None,
        })
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Deploy a VM on `node` running `spec` under the given storage
    /// transfer strategy. The workload starts at `start_at`.
    ///
    /// # Errors
    /// * [`EngineError::NodeOutOfRange`] — `node` is not in the cluster.
    /// * [`EngineError::GroupWorkloadOutsideGroup`] — `spec` is a
    ///   multi-rank workload (use [`Engine::add_group`]).
    /// * [`EngineError::WorkloadExceedsImage`] — the workload writes
    ///   beyond the configured image size.
    pub fn add_vm(
        &mut self,
        node: u32,
        spec: &WorkloadSpec,
        strategy: StrategyKind,
        start_at: SimTime,
    ) -> Result<VmId, EngineError> {
        if spec.group_ranks().is_some() {
            return Err(EngineError::GroupWorkloadOutsideGroup {
                workload: spec.label().to_string(),
            });
        }
        self.add_vm_inner(node, spec, strategy, start_at)
    }

    /// Everything that can be wrong about one `(node, workload)` pair —
    /// shared by `add_vm_inner` and `add_group`'s pre-pass so the two
    /// paths cannot drift apart.
    fn validate_placement(&self, node: u32, spec: &WorkloadSpec) -> Result<(), EngineError> {
        if node >= self.cfg.nodes {
            return Err(EngineError::NodeOutOfRange {
                node,
                nodes: self.cfg.nodes,
            });
        }
        if let Err(reason) = spec.validate() {
            return Err(EngineError::InvalidWorkload {
                workload: spec.label().to_string(),
                reason,
            });
        }
        let needs = spec.disk_footprint();
        if needs > self.cfg.image_size {
            return Err(EngineError::WorkloadExceedsImage {
                workload: spec.label().to_string(),
                needs,
                image: self.cfg.image_size,
            });
        }
        Ok(())
    }

    /// `add_vm` minus the group-workload check (group members land here).
    fn add_vm_inner(
        &mut self,
        node: u32,
        spec: &WorkloadSpec,
        strategy: StrategyKind,
        start_at: SimTime,
    ) -> Result<VmId, EngineError> {
        self.validate_placement(node, spec)?;
        let id = VmId(self.vms.len() as u32);
        let driver = spec.build();
        let nchunks = self.cfg.nchunks();
        let cache = PageCache::new(
            nchunks,
            CacheConfig::for_ram(self.cfg.vm_ram, self.cfg.chunk_size),
        );
        self.vms.push(VmRt {
            vm: Vm::new(id, node, self.cfg.vm_ram, 2),
            crashed: false,
            strategy,
            driver: Some(driver),
            started: false,
            finished_at: None,
            disk: VirtualDisk::new(nchunks, self.cfg.chunk_size),
            cache,
            store: ChunkStore::new(nchunks),
            dest_store: None,
            ops: HashMap::new(),
            compute: None,
            held_completions: Default::default(),
            group: None,
            migration: None,
            mig_epoch: 0,
            wb_inflight: 0,
            kupdate_credit: 0,
            fsync_waiters: Vec::new(),
            read_bytes: 0,
            write_bytes: 0,
            reads_hit_bytes: 0,
            reads_miss_bytes: 0,
            writes_buffered_bytes: 0,
            writes_throttled_bytes: 0,
            reads_pull_blocked: 0,
            read_busy: SimDuration::ZERO,
            write_busy: SimDuration::ZERO,
            pvfs_file_base: id.0 as u64 * self.cfg.image_size,
            rewrite_chunk_writes: 0,
            tele_last_at: SimTime::ZERO,
            tele_last_write: 0,
            tele_last_read: 0,
            tele_last_modified: 0,
            tele_last_rewrite: 0,
            tele_write_rate: 0.0,
            tele_read_rate: 0.0,
            tele_dirty_rate: 0.0,
            tele_rewrite_rate: 0.0,
            tele_last_busy: SimDuration::ZERO,
            tele_pressure: 0.0,
            tele_sampled: false,
        });
        self.queue.schedule(start_at, Ev::VmStart(id.0));
        let expire = SimDuration::from_secs_f64(self.cfg.dirty_expire_secs);
        self.queue
            .schedule(start_at + expire, Ev::KupdateTick(id.0));
        Ok(id)
    }

    /// Deploy a barrier-synchronized workload group (one VM per spec).
    /// All ranks must carry workloads that emit matching barriers (CM1).
    ///
    /// # Errors
    /// * [`EngineError::EmptyGroup`] — no placements given.
    /// * [`EngineError::GroupRankMismatch`] — a spec declares a rank
    ///   count that differs from the group size.
    /// * Everything [`Engine::add_vm`] can report per member.
    pub fn add_group(
        &mut self,
        placements: &[(u32, WorkloadSpec)],
        strategy: StrategyKind,
        start_at: SimTime,
    ) -> Result<Vec<VmId>, EngineError> {
        if placements.is_empty() {
            return Err(EngineError::EmptyGroup);
        }
        for (_, spec) in placements {
            if let Some(expected) = spec.group_ranks() {
                if expected as usize != placements.len() {
                    return Err(EngineError::GroupRankMismatch {
                        expected,
                        got: placements.len() as u32,
                    });
                }
            }
        }
        // Validate all placements before deploying any, so a failed
        // group leaves the engine unchanged.
        for (node, spec) in placements {
            self.validate_placement(*node, spec)?;
        }
        let gid = self.groups.len() as u32;
        let mut members = Vec::with_capacity(placements.len());
        let mut ids = Vec::with_capacity(placements.len());
        for (rank, (node, spec)) in placements.iter().enumerate() {
            let id = self.add_vm_inner(*node, spec, strategy, start_at)?;
            self.vms[id.0 as usize].group = Some((gid, rank as u32));
            members.push(id.0);
            ids.push(id);
        }
        self.groups.push(GroupRt {
            waiting: vec![None; members.len()],
            members,
            arrived: 0,
            episodes: 0,
        });
        Ok(ids)
    }

    /// Schedule a fault to fire at `at`. Faults are first-class events:
    /// they interleave deterministically with every other event, and two
    /// runs with the same fault plan are bit-identical.
    ///
    /// # Errors
    /// [`EngineError::InvalidFault`] for out-of-range nodes or VMs, a
    /// link factor outside `(0, 1]`, or a non-positive stall duration.
    pub fn schedule_fault(&mut self, at: SimTime, kind: FaultKind) -> Result<(), EngineError> {
        let fail = |reason: String| Err(EngineError::InvalidFault { reason });
        if let Some(node) = kind.node() {
            if node >= self.cfg.nodes {
                return fail(format!(
                    "{} targets node {node}, but the cluster has {} nodes",
                    kind.label(),
                    self.cfg.nodes
                ));
            }
        }
        match kind {
            FaultKind::LinkDegrade { factor, .. } => {
                if !(factor > 0.0 && factor <= 1.0) {
                    return fail(format!("link factor {factor} outside (0, 1]"));
                }
            }
            FaultKind::TransferStall { vm, secs } => {
                if vm as usize >= self.vms.len() {
                    return fail(format!(
                        "transfer-stall targets VM {vm}, but only {} are deployed",
                        self.vms.len()
                    ));
                }
                if !(secs.is_finite() && secs > 0.0) {
                    return fail(format!(
                        "stall duration {secs}s must be positive and finite"
                    ));
                }
            }
            FaultKind::LinkRestore { .. }
            | FaultKind::NodeCrash { .. }
            | FaultKind::NodeRestore { .. } => {}
        }
        let idx = self.faults.len() as u32;
        self.faults.push(kind);
        self.queue.schedule(at, Ev::Fault(idx));
        Ok(())
    }

    /// Run until `horizon` (or until the event queue drains) and return
    /// the run report.
    pub fn run_until(&mut self, horizon: SimTime) -> RunReport {
        self.run_until_observed(horizon, &mut NullObserver)
    }

    /// Like [`Engine::run_until`], but delivering every job status
    /// change and migration milestone to `obs` as it happens. The
    /// observer can stop the run early by returning
    /// [`RunControl::Stop`]; the report then reflects the state at the
    /// abort instant.
    pub fn run_until_observed(&mut self, horizon: SimTime, obs: &mut dyn Observer) -> RunReport {
        let stopped = self.step_until(horizon, obs) == RunControl::Stop;
        self.finish_run(horizon, stopped)
    }

    /// Process every pending event with time ≤ `until`, delivering
    /// observer callbacks, and return whether the observer stopped the
    /// run. This is the windowed building block of the sharded runner:
    /// a shard steps to each window barrier in turn, and a full run is
    /// one `step_until(horizon)` followed by [`Engine::finish_run`].
    ///
    /// Unlike a finished run, this does **not** move the clock to
    /// `until` — the clock stays at the last processed event, so a
    /// later window (or a final `finish_run`) continues seamlessly.
    pub fn step_until(&mut self, until: SimTime, obs: &mut dyn Observer) -> RunControl {
        while let Some(t) = self.queue.peek_time() {
            if t > until {
                break;
            }
            let (now, ev) = self.queue.pop().expect("peeked event");
            debug_assert!(now >= self.now, "event time went backwards");
            self.now = now;
            self.events_processed += 1;
            self.dispatch(ev);
            if self.drain_job_events(obs) == RunControl::Stop {
                return RunControl::Stop;
            }
            // Post-event audit hook: invariant checkers (lsm-check) read
            // the full engine state after every dispatched event.
            if obs.on_tick(self) == RunControl::Stop {
                return RunControl::Stop;
            }
        }
        RunControl::Continue
    }

    /// Close out a run that was stepped to `horizon` with
    /// [`Engine::step_until`]: move the clock to the horizon (unless an
    /// observer aborted, in which case the report reflects the abort
    /// instant), settle the network clock, and build the report.
    pub fn finish_run(&mut self, horizon: SimTime, stopped: bool) -> RunReport {
        if !stopped {
            self.now = horizon;
        }
        self.net.advance(self.now);
        report::build(self)
    }

    /// Turn on the network's `(time, live-flow count)` changepoint log.
    /// The sharded runner enables this on every shard so the merged
    /// report can reconstruct the exact global concurrent-flow peak (a
    /// shard's own high-water mark is not the fleet's).
    pub fn enable_load_log(&mut self) {
        self.net.enable_load_log();
    }

    /// Deliver pending job events to the observer.
    fn drain_job_events(&mut self, obs: &mut dyn Observer) -> RunControl {
        let mut control = RunControl::Continue;
        while !self.job_events.is_empty() {
            let batch = std::mem::take(&mut self.job_events);
            for ev in batch {
                let outcome = match ev.kind {
                    JobEventKind::Status(status) => {
                        let progress = self.job_progress(ev.job).expect("event names a live job");
                        obs.on_status(ev.job, status, ev.at, &progress)
                    }
                    JobEventKind::Milestone(m) => obs.on_milestone(ev.job, m, ev.at),
                };
                if outcome == RunControl::Stop {
                    control = RunControl::Stop;
                }
            }
        }
        control
    }

    /// Number of events processed so far (diagnostics).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    // ---------------- read-only inspection (invariant checkers) ----------------

    /// Whether a node has been taken down by a crash fault.
    pub fn node_crashed(&self, node: u32) -> bool {
        self.nodes
            .get(node as usize)
            .map(|n| n.crashed)
            .unwrap_or(false)
    }

    /// Nodes currently down, ascending.
    pub fn crashed_nodes(&self) -> Vec<u32> {
        (0..self.nodes.len() as u32)
            .filter(|&n| self.nodes[n as usize].crashed)
            .collect()
    }

    /// Number of deployed VMs.
    pub fn vm_count(&self) -> u32 {
        self.vms.len() as u32
    }

    /// Read-only snapshot handle for one VM's disk/store state, used by
    /// invariant checkers ([`Observer::on_tick`]) to audit conservation
    /// laws — chunk-version monotonicity, store/disk coverage — without
    /// reaching into engine internals.
    pub fn inspect_vm(&self, vm: u32) -> Option<VmInspect<'_>> {
        self.vms.get(vm as usize).map(|v| VmInspect { vm: v })
    }

    /// The network model (read-only): flow views, topology, delivered
    /// bytes — everything a conservation audit needs.
    pub fn network(&self) -> &FlowNet {
        &self.net
    }

    /// Select the network rate solver. The default incremental solver is
    /// the production path; [`lsm_netsim::SolverMode::Reference`] re-runs
    /// the original from-scratch allocation on every change and exists so
    /// tests can assert the two produce bit-identical runs.
    pub fn set_solver_mode(&mut self, mode: lsm_netsim::SolverMode) {
        self.net.set_solver(mode);
    }

    // ---------------- event dispatch ----------------

    fn dispatch(&mut self, ev: Ev) {
        match ev {
            Ev::NetWake => self.drain_net(),
            Ev::DiskWake(n) => self.drain_disk(n),
            Ev::CacheRdWake(n) => self.drain_cache(n, true),
            Ev::CacheWrWake(n) => self.drain_cache(n, false),
            Ev::ComputeDone(v) => self.compute_done(v),
            Ev::CtlArrive(node, msg) => {
                // Control messages addressed to a crashed node are lost
                // with it.
                if !self.nodes[node as usize].crashed {
                    migration::ctl_arrive(self, node, msg);
                }
            }
            Ev::VmStart(v) => self.vm_start(v),
            Ev::MigrationStart(job) => orchestrator::job_ready(self, JobId(job)),
            Ev::RequestReady(req) => orchestrator::intent_ready(self, req),
            Ev::PlannerDrain => orchestrator::planner_drain(self),
            Ev::TelemetryTick => orchestrator::telemetry_tick(self),
            Ev::OpTimer(op) => self.op_part_done(op),
            Ev::ConvergencePoll(v) => migration::convergence_poll(self, v),
            Ev::KupdateTick(v) => self.kupdate_tick(v),
            Ev::Fault(idx) => fault::apply_fault(self, self.faults[idx as usize]),
            Ev::JobDeadline(job) => fault::job_deadline(self, JobId(job)),
            Ev::StallOver(v) => fault::stall_over(self, v),
            Ev::RebalanceTick => rebalance::rebalance_tick(self),
            Ev::RetryFire(job) => resilient::retry_fire(self, JobId(job)),
            Ev::CancelFire(job) => resilient::cancel_fire(self, JobId(job)),
        }
    }

    /// Periodic dirty-expiry sweep: grant the write-back pump credit to
    /// flush the currently dirty chunks even below the background
    /// threshold, then re-arm the timer.
    fn kupdate_tick(&mut self, v: VmIdx) {
        let expire = SimDuration::from_secs_f64(self.cfg.dirty_expire_secs);
        {
            let vm = &mut self.vms[v as usize];
            if vm.crashed {
                return; // the guest kernel died with its host
            }
            if vm.finished_at.is_some() && !vm.cache.has_writeback_work() {
                return; // workload done and clean: stop ticking
            }
            let dirty_chunks = (vm.cache.dirty_bytes() / self.cfg.chunk_size) as u32;
            vm.kupdate_credit = vm.kupdate_credit.max(dirty_chunks);
        }
        io::pump_writeback(self, v);
        self.schedule_in(expire, Ev::KupdateTick(v));
    }

    fn vm_start(&mut self, v: VmIdx) {
        let vm = &mut self.vms[v as usize];
        if vm.started || vm.crashed {
            return;
        }
        vm.started = true;
        let mut driver = vm.driver.take().expect("driver present");
        let actions = driver.start(self.now);
        self.vms[v as usize].driver = Some(driver);
        self.handle_actions(v, actions);
    }

    // ---------------- resource wake/drain plumbing ----------------

    pub(crate) fn resync_net(&mut self) {
        let t = self
            .net
            .next_completion()
            .map(|(t, _)| t)
            .unwrap_or(SimTime::FAR_FUTURE);
        if let Some((_, at)) = self.net_wake {
            if at == t {
                return;
            }
        }
        if let Some((ev, _)) = self.net_wake.take() {
            self.queue.cancel(ev);
        }
        if t != SimTime::FAR_FUTURE {
            let ev = self.queue.schedule(t, Ev::NetWake);
            self.net_wake = Some((ev, t));
        }
    }

    fn drain_net(&mut self) {
        self.net_wake = None;
        while let Some((t, id)) = self.net.next_completion() {
            if t > self.now {
                break;
            }
            self.net.complete(self.now, id);
            let ctx = self.flow_ctx.remove(&id).expect("flow has context");
            self.flow_done(ctx);
        }
        self.resync_net();
    }

    /// Start a bulk transfer with completion routing. A flow toward (or
    /// from) a crashed node never enters the network: it is treated as
    /// severed on the spot and its context routed through the same loss
    /// handler a crash uses, so callers need no per-site crash checks.
    pub(crate) fn start_flow(
        &mut self,
        src: u32,
        dst: u32,
        bytes: u64,
        cap: Option<f64>,
        tag: TrafficTag,
        ctx: FlowCtx,
    ) {
        if self.nodes[src as usize].crashed || self.nodes[dst as usize].crashed {
            fault::flow_lost(self, ctx);
            return;
        }
        let id = self
            .net
            .start_flow(self.now, NodeId(src), NodeId(dst), bytes, cap, tag);
        self.flow_ctx.insert(id, ctx);
        self.resync_net();
    }

    /// Deliver a control message after the fabric latency (loopback
    /// messages are immediate).
    pub(crate) fn send_ctl(&mut self, from: u32, to: u32, msg: Ctl) {
        let delay = if from == to {
            SimDuration::ZERO
        } else {
            self.net.account_control(1500);
            self.net.latency()
        };
        self.queue
            .schedule(self.now + delay, Ev::CtlArrive(to, msg));
    }

    fn resync_node_resource(&mut self, node: u32, which: u8) {
        let t = {
            let n = &self.nodes[node as usize];
            let res = match which {
                0 => &n.disk,
                1 => &n.cache_rd,
                _ => &n.cache_wr,
            };
            res.next_completion()
                .map(|(t, _)| t)
                .unwrap_or(SimTime::FAR_FUTURE)
        };
        let prev = {
            let n = &mut self.nodes[node as usize];
            let wake = match which {
                0 => &mut n.disk_wake,
                1 => &mut n.cache_rd_wake,
                _ => &mut n.cache_wr_wake,
            };
            if let Some((_, at)) = *wake {
                if at == t {
                    return;
                }
            }
            wake.take()
        };
        if let Some((ev, _)) = prev {
            self.queue.cancel(ev);
        }
        if t != SimTime::FAR_FUTURE {
            let evk = match which {
                0 => Ev::DiskWake(node),
                1 => Ev::CacheRdWake(node),
                _ => Ev::CacheWrWake(node),
            };
            let ev = self.queue.schedule(t, evk);
            let n = &mut self.nodes[node as usize];
            let wake = match which {
                0 => &mut n.disk_wake,
                1 => &mut n.cache_rd_wake,
                _ => &mut n.cache_wr_wake,
            };
            *wake = Some((ev, t));
        }
    }

    pub(crate) fn resync_disk(&mut self, node: u32) {
        self.resync_node_resource(node, 0);
    }

    pub(crate) fn resync_cache_rd(&mut self, node: u32) {
        self.resync_node_resource(node, 1);
    }

    pub(crate) fn resync_cache_wr(&mut self, node: u32) {
        self.resync_node_resource(node, 2);
    }

    pub(crate) fn disk_submit(&mut self, node: u32, bytes: u64, ctx: DiskCtx) {
        let now = self.now;
        let n = &mut self.nodes[node as usize];
        let id = n.disk.submit(now, bytes, None);
        n.disk_ctx.insert(id, ctx);
        self.resync_disk(node);
    }

    pub(crate) fn cache_submit(&mut self, node: u32, bytes: u64, read: bool, op: OpId) {
        let now = self.now;
        let n = &mut self.nodes[node as usize];
        if read {
            let id = n.cache_rd.submit(now, bytes, None);
            n.cache_rd_ctx.insert(id, CacheCtx { op });
            self.resync_cache_rd(node);
        } else {
            let id = n.cache_wr.submit(now, bytes, None);
            n.cache_wr_ctx.insert(id, CacheCtx { op });
            self.resync_cache_wr(node);
        }
    }

    fn drain_disk(&mut self, node: u32) {
        self.nodes[node as usize].disk_wake = None;
        loop {
            let next = self.nodes[node as usize].disk.next_completion();
            match next {
                Some((t, id)) if t <= self.now => {
                    let now = self.now;
                    let n = &mut self.nodes[node as usize];
                    n.disk.complete(now, id);
                    let ctx = n.disk_ctx.remove(&id).expect("disk req has context");
                    self.disk_done(node, ctx);
                }
                _ => break,
            }
        }
        self.resync_disk(node);
    }

    fn drain_cache(&mut self, node: u32, read: bool) {
        if read {
            self.nodes[node as usize].cache_rd_wake = None;
        } else {
            self.nodes[node as usize].cache_wr_wake = None;
        }
        loop {
            let now = self.now;
            let n = &mut self.nodes[node as usize];
            let res = if read {
                &mut n.cache_rd
            } else {
                &mut n.cache_wr
            };
            match res.next_completion() {
                Some((t, id)) if t <= now => {
                    res.complete(now, id);
                    let ctx = if read {
                        n.cache_rd_ctx.remove(&id)
                    } else {
                        n.cache_wr_ctx.remove(&id)
                    }
                    .expect("cache req has context");
                    self.op_part_done(ctx.op);
                }
                _ => break,
            }
        }
        if read {
            self.resync_cache_rd(node);
        } else {
            self.resync_cache_wr(node);
        }
    }

    // ---------------- completion routing ----------------

    fn flow_done(&mut self, ctx: FlowCtx) {
        match ctx {
            FlowCtx::MemRound { vm } => migration::mem_round_done(self, vm),
            FlowCtx::MemStop { vm } => migration::mem_stop_done(self, vm),
            FlowCtx::MemPostPull { vm } => migration::mem_post_pull_done(self, vm),
            FlowCtx::PushBatch {
                vm,
                chunks,
                slot,
                epoch,
            } => migration::push_batch_arrived(self, vm, chunks, slot, epoch),
            FlowCtx::PullBatch {
                vm,
                chunks,
                background,
                epoch,
            } => migration::pull_batch_arrived(self, vm, chunks, background, epoch),
            FlowCtx::MirrorWrite { vm, op, chunks } => {
                migration::mirror_write_arrived(self, vm, op, chunks)
            }
            FlowCtx::RepoFetch {
                vm,
                node,
                chunks,
                op,
                replica,
            } => io::repo_fetch_arrived(self, vm, node, chunks, op, replica),
            FlowCtx::PvfsLeg {
                op,
                server,
                bytes,
                write,
            } => pvfs::leg_flow_done(self, op, server, bytes, write),
            FlowCtx::Halo { op } => self.op_part_done(op),
        }
    }

    fn disk_done(&mut self, node: u32, ctx: DiskCtx) {
        if self.nodes[node as usize].crashed {
            // The device died mid-request: route the context through the
            // loss handler instead of its normal completion path.
            fault::disk_lost(self, node, ctx);
            return;
        }
        match ctx {
            DiskCtx::VmOp { op } => self.op_part_done(op),
            DiskCtx::Writeback { vm, chunk } => io::writeback_done(self, vm, chunk),
            DiskCtx::PushRead {
                vm,
                chunks,
                slot,
                epoch,
            } => migration::push_read_done(self, vm, chunks, slot, epoch),
            DiskCtx::PullRead {
                vm,
                chunks,
                background,
                epoch,
            } => migration::pull_read_done(self, vm, chunks, background, epoch),
            DiskCtx::RepoRead {
                vm,
                node,
                chunks,
                op,
                replica,
            } => io::repo_read_done(self, vm, node, chunks, op, replica),
            DiskCtx::Ingest { node } => {
                self.nodes[node as usize].ingest_inflight -= 1;
                self.pump_ingest(node);
            }
            DiskCtx::PvfsServer {
                op,
                write,
                bytes,
                server,
            } => pvfs::server_disk_done(self, op, write, bytes, server),
        }
    }

    /// Queue network-received bytes for background drain to `node`'s disk
    /// (host page cache absorbs them; the disk stays busy for exactly the
    /// received volume without blocking the transfer pipelines).
    pub(crate) fn ingest(&mut self, node: u32, bytes: u64) {
        self.nodes[node as usize].ingest_backlog += bytes;
        self.pump_ingest(node);
    }

    fn pump_ingest(&mut self, node: u32) {
        let batch = self.cfg.chunk_size * self.cfg.transfer_batch as u64;
        loop {
            let n = &mut self.nodes[node as usize];
            if n.ingest_inflight >= self.cfg.writeback_depth + 2 || n.ingest_backlog == 0 {
                break;
            }
            let take = batch.min(n.ingest_backlog);
            n.ingest_backlog -= take;
            n.ingest_inflight += 1;
            self.disk_submit(node, take, DiskCtx::Ingest { node });
        }
    }

    // ---------------- ops ----------------

    pub(crate) fn new_op(
        &mut self,
        vm: VmIdx,
        token: ActionToken,
        kind: OpKind,
        bytes: u64,
    ) -> OpId {
        let id = self.next_op;
        self.next_op += 1;
        self.ops.insert(
            id,
            OpRt {
                vm,
                token,
                kind,
                parts: 0,
                issued: self.now,
                bytes,
            },
        );
        self.vms[vm as usize].ops.insert(token, id);
        id
    }

    pub(crate) fn op_add_parts(&mut self, op: OpId, n: u32) {
        self.ops.get_mut(&op).expect("live op").parts += n;
    }

    pub(crate) fn op_parts(&self, op: OpId) -> u32 {
        self.ops.get(&op).map(|o| o.parts).unwrap_or(0)
    }

    pub(crate) fn op_vm(&self, op: OpId) -> Option<VmIdx> {
        self.ops.get(&op).map(|o| o.vm)
    }

    /// One part of an op finished; completes the op at zero outstanding.
    /// Tolerates unknown ops: a node crash purges the ops of its VMs,
    /// but completions already in flight (other nodes' disks, timers)
    /// still land here afterwards.
    pub(crate) fn op_part_done(&mut self, op: OpId) {
        let done = {
            let Some(o) = self.ops.get_mut(&op) else {
                return;
            };
            debug_assert!(o.parts > 0, "op part underflow");
            o.parts -= 1;
            o.parts == 0
        };
        if done {
            self.finish_op(op);
        }
    }

    pub(crate) fn finish_op(&mut self, op: OpId) {
        let Some(o) = self.ops.remove(&op) else {
            return; // purged by a crash while a completion was in flight
        };
        let vm = &mut self.vms[o.vm as usize];
        vm.ops.remove(&o.token);
        let dur = self.now.since(o.issued);
        match o.kind {
            OpKind::Read => {
                vm.read_bytes += o.bytes;
                vm.read_busy += dur;
            }
            OpKind::Write => {
                vm.write_bytes += o.bytes;
                vm.write_busy += dur;
            }
            _ => {}
        }
        self.deliver_completion(o.vm, o.token);
    }

    // ---------------- driver interaction ----------------

    pub(crate) fn deliver_completion(&mut self, v: VmIdx, token: ActionToken) {
        let vm = &mut self.vms[v as usize];
        if vm.crashed {
            return; // the driver died with its host
        }
        if vm.vm.state() == VmState::Paused {
            vm.held_completions.push_back(token);
            return;
        }
        let mut driver = vm.driver.take().expect("driver present");
        let actions = driver.on_complete(self.now, token);
        self.vms[v as usize].driver = Some(driver);
        self.handle_actions(v, actions);
    }

    pub(crate) fn release_held(&mut self, v: VmIdx) {
        if self.vms[v as usize].crashed {
            return;
        }
        while let Some(token) = self.vms[v as usize].held_completions.pop_front() {
            if self.vms[v as usize].vm.state() == VmState::Paused {
                // Re-paused mid-drain: put it back and stop.
                self.vms[v as usize].held_completions.push_front(token);
                break;
            }
            let mut driver = self.vms[v as usize].driver.take().expect("driver present");
            let actions = driver.on_complete(self.now, token);
            self.vms[v as usize].driver = Some(driver);
            self.handle_actions(v, actions);
        }
    }

    pub(crate) fn handle_actions(&mut self, v: VmIdx, actions: Vec<Action>) {
        for a in actions {
            match a {
                Action::Compute { token, dur } => self.start_compute(v, token, dur),
                Action::Io {
                    token,
                    kind,
                    offset,
                    len,
                } => {
                    if self.vms[v as usize].strategy == StrategyKind::SharedFs {
                        pvfs::submit_io(self, v, token, kind, offset, len);
                    } else {
                        io::submit_io(self, v, token, kind, offset, len);
                    }
                }
                Action::Fsync { token } => {
                    if self.vms[v as usize].strategy == StrategyKind::SharedFs {
                        // PVFS writes are synchronous: fsync is a no-op.
                        self.deliver_completion(v, token);
                    } else {
                        io::submit_fsync(self, v, token);
                    }
                }
                Action::NetSend { token, peer, bytes } => self.net_send(v, token, peer, bytes),
                Action::Barrier { token } => self.barrier_arrive(v, token),
                Action::Finish => {
                    self.vms[v as usize].finished_at = Some(self.now);
                }
            }
        }
    }

    // ---------------- compute (virtual progress) ----------------

    pub(crate) fn compute_factor(&self, v: VmIdx) -> f64 {
        let vm = &self.vms[v as usize];
        if vm.vm.state() == VmState::Paused {
            return 0.0;
        }
        let Some(m) = vm.migration.as_ref() else {
            return 1.0;
        };
        if matches!(m.phase, MigPhase::Complete | MigPhase::Aborted) {
            return 1.0;
        }
        // A QoS bandwidth cap bounds the transfer rate, and the
        // guest-visible interference shrinks with it (scale 1.0 when
        // no cap is configured).
        let mut f = 1.0 - self.cfg.migration_cpu_steal * qos::interference_scale(self);
        // Post-copy memory: remote page faults slow the guest while the
        // background pull is still running.
        if m.postcopy_mem
            .as_ref()
            .map(|p| p.faulting())
            .unwrap_or(false)
        {
            f *= self.cfg.postcopy_fault_slowdown;
        }
        // Auto-converge: each throttle step compounds a configured
        // slowdown onto the guest until switchover releases it.
        if m.throttle_step > 0 {
            if let Some(r) = self.resilience.as_ref() {
                f *= (1.0 - r.cfg.converge_step).powi(m.throttle_step as i32);
            }
        }
        // Compression: the source guest pays the CPU cost while it is
        // still the one generating (and compressing) the transfer —
        // i.e. until control moves to the destination.
        if m.control_at.is_none() {
            if let Some(q) = self.qos.as_ref() {
                if q.cfg.compressing() {
                    f *= 1.0 - q.cfg.compress_cpu_frac;
                }
            }
        }
        f
    }

    fn start_compute(&mut self, v: VmIdx, token: ActionToken, dur: SimDuration) {
        debug_assert!(
            self.vms[v as usize].compute.is_none(),
            "driver issued overlapping compute bursts"
        );
        let factor = self.compute_factor(v);
        let mut rt = ComputeRt {
            token,
            remaining: dur.as_secs_f64(),
            last: self.now,
            factor,
            ev: None,
        };
        if factor > 0.0 {
            let at = self.now + SimDuration::from_secs_f64(rt.remaining / factor);
            rt.ev = Some(self.queue.schedule(at, Ev::ComputeDone(v)));
        }
        self.vms[v as usize].compute = Some(rt);
    }

    /// Recompute the compute timer after a factor change (pause, resume,
    /// migration start/stop).
    pub(crate) fn update_compute(&mut self, v: VmIdx) {
        // Every factor-changing transition routes through here, which
        // makes it the one choke point where the SLA degradation
        // integral can advance in lockstep with the compute model —
        // including for VMs with no compute burst in flight.
        let factor = self.compute_factor(v);
        qos::sla_transition(self, v, factor);
        let now = self.now;
        let Some(mut rt) = self.vms[v as usize].compute.take() else {
            return;
        };
        if factor.to_bits() == rt.factor.to_bits() {
            // Unchanged factor: progress since `rt.last` is still linear
            // at the same slope, so the pending completion timer (if
            // any) remains exact. Skipping the cancel + reschedule keeps
            // this no-op transition off the event heap — it was the
            // dominant cost of the always-on SLA hook on migration-heavy
            // runs.
            self.vms[v as usize].compute = Some(rt);
            return;
        }
        // Integrate progress at the old factor.
        let dt = now.since(rt.last).as_secs_f64();
        rt.remaining = (rt.remaining - dt * rt.factor).max(0.0);
        rt.last = now;
        rt.factor = factor;
        if let Some(ev) = rt.ev.take() {
            self.queue.cancel(ev);
        }
        if factor > 0.0 {
            let at = now + SimDuration::from_secs_f64(rt.remaining / factor);
            rt.ev = Some(self.queue.schedule(at, Ev::ComputeDone(v)));
        }
        self.vms[v as usize].compute = Some(rt);
    }

    fn compute_done(&mut self, v: VmIdx) {
        let now = self.now;
        let Some(mut rt) = self.vms[v as usize].compute.take() else {
            return; // stale timer after cancellation
        };
        let dt = now.since(rt.last).as_secs_f64();
        rt.remaining = (rt.remaining - dt * rt.factor).max(0.0);
        rt.last = now;
        if rt.remaining > 1e-9 {
            // Stale event (factor changed without cancel); reschedule.
            if rt.factor > 0.0 {
                let at = now + SimDuration::from_secs_f64(rt.remaining / rt.factor);
                rt.ev = Some(self.queue.schedule(at, Ev::ComputeDone(v)));
            }
            self.vms[v as usize].compute = Some(rt);
            return;
        }
        self.deliver_completion(v, rt.token);
    }

    // ---------------- group communication ----------------

    fn net_send(&mut self, v: VmIdx, token: ActionToken, peer_rank: u32, bytes: u64) {
        let (gid, _) = self.vms[v as usize].group.expect("NetSend outside a group");
        let peer_vm = self.groups[gid as usize].members[peer_rank as usize];
        let src = self.vms[v as usize].vm.host;
        let dst = self.vms[peer_vm as usize].vm.host;
        let op = self.new_op(v, token, OpKind::NetSend, bytes);
        self.op_add_parts(op, 1);
        if src == dst {
            // Same host (e.g. after migration): memory-speed loopback.
            self.op_part_done(op);
            return;
        }
        self.start_flow(
            src,
            dst,
            bytes,
            None,
            TrafficTag::AppNet,
            FlowCtx::Halo { op },
        );
    }

    fn barrier_arrive(&mut self, v: VmIdx, token: ActionToken) {
        let (gid, rank) = self.vms[v as usize].group.expect("Barrier outside a group");
        let g = &mut self.groups[gid as usize];
        debug_assert!(g.waiting[rank as usize].is_none(), "double barrier arrival");
        g.waiting[rank as usize] = Some(token);
        g.arrived += 1;
        if g.arrived as usize == g.members.len() {
            g.arrived = 0;
            g.episodes += 1;
            let to_release: Vec<(VmIdx, ActionToken)> = g
                .members
                .clone()
                .into_iter()
                .zip(g.waiting.iter_mut().map(|w| w.take().expect("arrived")))
                .collect();
            for (member, tok) in to_release {
                self.deliver_completion(member, tok);
            }
        }
    }

    // ---------------- accessors for submodules ----------------

    pub(crate) fn cfg(&self) -> &ClusterConfig {
        &self.cfg
    }

    pub(crate) fn vm(&self, v: VmIdx) -> &VmRt {
        &self.vms[v as usize]
    }

    pub(crate) fn vm_mut(&mut self, v: VmIdx) -> &mut VmRt {
        &mut self.vms[v as usize]
    }

    pub(crate) fn vms(&self) -> &[VmRt] {
        &self.vms
    }

    pub(crate) fn net(&self) -> &FlowNet {
        &self.net
    }

    pub(crate) fn repo_mut(&mut self) -> &mut StripedRepo {
        &mut self.repo
    }

    pub(crate) fn pvfs_ref(&self) -> &PvfsFs {
        &self.pvfs
    }

    pub(crate) fn schedule_in(&mut self, d: SimDuration, ev: Ev) -> EventId {
        self.queue.schedule(self.now + d, ev)
    }
}

/// Read-only view of one VM's state for invariant checkers (see
/// [`Engine::inspect_vm`]).
pub struct VmInspect<'a> {
    vm: &'a VmRt,
}

impl VmInspect<'_> {
    /// The node currently hosting the VM.
    pub fn host(&self) -> u32 {
        self.vm.vm.host
    }

    /// Whether the VM died with its host.
    pub fn crashed(&self) -> bool {
        self.vm.crashed
    }

    /// Number of chunks in the VM's virtual disk.
    pub fn nchunks(&self) -> u32 {
        self.vm.disk.nchunks()
    }

    /// Logical content version the guest observes for a chunk
    /// (0 = pristine base content; strictly increasing across writes).
    pub fn disk_version(&self, chunk: u32) -> u64 {
        self.vm.disk.version(lsm_blockdev::ChunkId(chunk))
    }

    /// Version physically present for a chunk at the VM's current host
    /// (`None` if the store holds nothing for it).
    pub fn store_version(&self, chunk: u32) -> Option<u64> {
        let c = lsm_blockdev::ChunkId(chunk);
        self.vm.store.has(c).then(|| self.vm.store.version(c))
    }

    /// Version building up at a migration destination, if a migration
    /// is staging one.
    pub fn dest_store_version(&self, chunk: u32) -> Option<u64> {
        let c = lsm_blockdev::ChunkId(chunk);
        self.vm
            .dest_store
            .as_ref()
            .and_then(|s| s.has(c).then(|| s.version(c)))
    }

    /// Chunks ever written by the guest.
    pub fn modified_count(&self) -> u32 {
        self.vm.disk.modified().count()
    }

    /// True when every modified chunk is physically present at the
    /// current host with its latest version (the end-of-migration
    /// consistency criterion; trivially true outside migrations).
    pub fn store_covers_disk(&self) -> bool {
        self.vm.store.covers(&self.vm.disk)
    }
}
