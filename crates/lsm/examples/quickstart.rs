//! Quickstart: live-migrate one I/O-intensive VM with the paper's hybrid
//! push/prefetch scheme, watch its lifecycle through an observer, and
//! inspect the outcome.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use lsm::core::engine::{JobId, MigrationProgress, MigrationStatus, Observer, RunControl};
use lsm::core::policy::StrategyKind;
use lsm::experiments::scenario::{run_scenario_observed, ScenarioSpec};
use lsm::simcore::units::fmt_bytes;
use lsm::simcore::SimTime;
use lsm::workloads::WorkloadSpec;

/// Print every lifecycle transition as the migration progresses.
struct Watch;

impl Observer for Watch {
    fn on_status(
        &mut self,
        job: JobId,
        status: MigrationStatus,
        now: SimTime,
        p: &MigrationProgress,
    ) -> RunControl {
        println!(
            "[{:>7.2}s] job {} -> {:<22} ({} rounds, {} pushed, {} pulled, {} chunks left)",
            now.as_secs_f64(),
            job.0,
            status.label(),
            p.mem_rounds,
            p.chunks_pushed,
            p.chunks_pulled,
            p.chunks_remaining,
        );
        RunControl::Continue
    }
}

fn main() {
    // One VM on node 0 running AsyncWR (compute overlapped with steady
    // writes), live-migrated to node 1 at t = 20 s.
    let spec =
        ScenarioSpec::single_migration(StrategyKind::Hybrid, WorkloadSpec::async_wr_short(), 20.0)
            .with_horizon(400.0);

    let report = run_scenario_observed(&spec, &mut Watch).expect("scenario is valid");
    let m = report.the_migration();

    println!("\n=== hybrid live storage migration ===");
    println!("status                {:>10}", m.status.label());
    println!(
        "requested at          {:>8.2} s",
        m.requested_at.as_secs_f64()
    );
    println!(
        "control transferred   {:>8.2} s",
        m.control_at.expect("control transferred").as_secs_f64()
    );
    println!(
        "source relinquished   {:>8.2} s",
        m.completed_at.expect("completed").as_secs_f64()
    );
    println!(
        "migration time        {:>8.2} s",
        m.migration_time.expect("completed").as_secs_f64()
    );
    println!(
        "guest downtime        {:>8.1} ms",
        m.downtime.as_secs_f64() * 1e3
    );
    println!("memory rounds         {:>8}", m.mem_rounds);
    println!("chunks pushed         {:>8}", m.pushed_chunks);
    println!("chunks prefetched     {:>8}", m.pulled_chunks);
    println!("  of which on-demand  {:>8}", m.ondemand_chunks);
    println!(
        "destination consistent: {}",
        m.consistent.expect("checked at completion")
    );
    println!(
        "total network traffic {:>10}",
        fmt_bytes(report.total_traffic)
    );

    let vm = &report.vms[0];
    println!(
        "\nworkload: {} — {} iterations, {} written, finished at {:.1} s",
        vm.label,
        vm.iterations,
        fmt_bytes(vm.bytes_written),
        vm.finished_at.expect("finished").as_secs_f64()
    );
    assert!(m.completed && m.consistent == Some(true));
}
