//! Workspace-level consistency sweep: every strategy × every workload
//! class must deliver a bit-exact destination disk, across varied
//! migration timings.

use lsm::core::config::ClusterConfig;
use lsm::core::engine::Engine;
use lsm::core::policy::StrategyKind;
use lsm::simcore::units::MIB;
use lsm::simcore::SimTime;
use lsm::workloads::WorkloadSpec;

fn workloads() -> Vec<(&'static str, WorkloadSpec)> {
    vec![
        (
            "seq",
            WorkloadSpec::SeqWrite {
                offset: 0,
                total: 48 * MIB,
                block: MIB,
                think_secs: 0.01,
            },
        ),
        (
            "hotspot",
            WorkloadSpec::HotspotWrite {
                offset: 8 * MIB,
                region_blocks: 64,
                block: 256 * 1024,
                count: 2500,
                theta: 0.8,
                think_secs: 0.01,
                seed: 3,
            },
        ),
        (
            "ior",
            WorkloadSpec::Ior(lsm::workloads::IorParams {
                file_size: 24 * MIB,
                block_size: 256 * 1024,
                iterations: 4,
                file_offset: 16 * MIB,
                fsync_per_phase: true,
            }),
        ),
    ]
}

#[test]
fn all_strategies_migrate_consistently_at_various_times() {
    for strategy in StrategyKind::ALL {
        for (name, wl) in workloads() {
            for migrate_at in [0.5, 3.0, 12.0] {
                let mut eng = Engine::new(ClusterConfig {
                    dirty_expire_secs: 2.0,
                    ..ClusterConfig::small_test()
                })
                .unwrap();
                let vm = eng.add_vm(0, &wl, strategy, SimTime::ZERO).unwrap();
                eng.schedule_migration(vm, 2, SimTime::from_secs_f64(migrate_at))
                    .unwrap();
                let r = eng.run_until(SimTime::from_secs(1200));
                let m = r.the_migration();
                assert!(
                    m.completed,
                    "{}/{name}@{migrate_at}: incomplete",
                    strategy.label()
                );
                assert_eq!(
                    m.consistent,
                    Some(true),
                    "{}/{name}@{migrate_at}: destination diverged",
                    strategy.label()
                );
                assert!(
                    r.vms[0].finished_at.is_some(),
                    "{}/{name}@{migrate_at}: workload stuck",
                    strategy.label()
                );
            }
        }
    }
}

#[test]
fn back_to_back_migrations_of_different_vms() {
    let mut eng = Engine::new(ClusterConfig {
        nodes: 8,
        ..ClusterConfig::small_test()
    })
    .unwrap();
    let wl = WorkloadSpec::SeqWrite {
        offset: 0,
        total: 32 * MIB,
        block: MIB,
        think_secs: 0.02,
    };
    let a = eng
        .add_vm(0, &wl, StrategyKind::Hybrid, SimTime::ZERO)
        .unwrap();
    let b = eng
        .add_vm(1, &wl, StrategyKind::Hybrid, SimTime::ZERO)
        .unwrap();
    eng.schedule_migration(a, 4, SimTime::from_secs_f64(1.0))
        .unwrap();
    eng.schedule_migration(b, 5, SimTime::from_secs_f64(2.5))
        .unwrap();
    let r = eng.run_until(SimTime::from_secs(600));
    assert_eq!(r.migrations.len(), 2);
    for m in &r.migrations {
        assert!(m.completed && m.consistent == Some(true));
    }
    assert_eq!(r.vms[0].final_host, 4);
    assert_eq!(r.vms[1].final_host, 5);
}
