//! The flow scheduler: incremental max–min fair rate allocation.

use crate::topology::{NodeId, Topology};
use lsm_simcore::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Handle to an in-flight network flow.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FlowId(pub u64);

/// Classification of network traffic, used to reproduce the paper's
/// per-cause traffic accounting (Figures 3b, 4b, 5b).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum TrafficTag {
    /// Memory pre-copy / post-copy transfer performed by the hypervisor.
    Memory,
    /// Chunks actively pushed source→destination before control transfer.
    StoragePush,
    /// Chunks pulled destination←source after control transfer
    /// (both prioritized prefetch and on-demand pulls).
    StoragePull,
    /// Synchronous write mirroring (the `mirror` baseline).
    Mirror,
    /// On-demand base-image fetches from the striped repository.
    RepoFetch,
    /// I/O redirected to the parallel file system (`pvfs-shared` baseline).
    PvfsIo,
    /// Application-level traffic (e.g. CM1 halo exchanges).
    AppNet,
    /// Small control messages (migration requests, chunk lists, acks).
    Control,
}

impl TrafficTag {
    /// All tags, for report iteration.
    pub const ALL: [TrafficTag; 8] = [
        TrafficTag::Memory,
        TrafficTag::StoragePush,
        TrafficTag::StoragePull,
        TrafficTag::Mirror,
        TrafficTag::RepoFetch,
        TrafficTag::PvfsIo,
        TrafficTag::AppNet,
        TrafficTag::Control,
    ];

    /// True if this traffic is attributable to live migration itself
    /// (the paper's Fig 5b subtracts application traffic).
    pub fn is_migration(self) -> bool {
        !matches!(self, TrafficTag::AppNet)
    }
}

#[derive(Debug, Clone)]
struct Flow {
    src: NodeId,
    dst: NodeId,
    remaining: f64,
    rate: f64,
    cap: Option<f64>,
    tag: TrafficTag,
}

/// The flow-level network simulator. See the crate docs for the model.
#[derive(Debug)]
pub struct FlowNet {
    topo: Topology,
    flows: BTreeMap<FlowId, Flow>,
    next_id: u64,
    last_advance: SimTime,
    delivered: BTreeMap<TrafficTag, f64>,
    total_delivered: f64,
}

impl FlowNet {
    /// Create a network over `topo` with no flows.
    pub fn new(topo: Topology) -> Self {
        FlowNet {
            topo,
            flows: BTreeMap::new(),
            next_id: 0,
            last_advance: SimTime::ZERO,
            delivered: BTreeMap::new(),
            total_delivered: 0.0,
        }
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// One-way control-message latency of the fabric.
    pub fn latency(&self) -> SimDuration {
        self.topo.latency
    }

    /// Number of in-flight flows.
    pub fn active(&self) -> usize {
        self.flows.len()
    }

    /// Start a bulk transfer of `bytes` from `src` to `dst`.
    ///
    /// `cap` optionally rate-limits this flow (bytes/second) on top of the
    /// fair share — this is how QEMU's `migrate_set_speed` is modeled.
    ///
    /// Panics if `src == dst`; local data movement never crosses the
    /// network and must be modeled on the node's disk/cache instead.
    pub fn start_flow(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        cap: Option<f64>,
        tag: TrafficTag,
    ) -> FlowId {
        assert!(src != dst, "loopback flows are not network flows");
        assert!(src.idx() < self.topo.len() && dst.idx() < self.topo.len());
        self.advance(now);
        let id = FlowId(self.next_id);
        self.next_id += 1;
        self.flows.insert(
            id,
            Flow {
                src,
                dst,
                remaining: bytes as f64,
                rate: 0.0,
                cap,
                tag,
            },
        );
        self.recompute();
        id
    }

    /// Cancel an in-flight flow, returning the bytes not yet delivered.
    pub fn cancel_flow(&mut self, now: SimTime, id: FlowId) -> Option<u64> {
        self.advance(now);
        let f = self.flows.remove(&id)?;
        self.recompute();
        Some(f.remaining.ceil().max(0.0) as u64)
    }

    /// Mark a flow complete at `now` (which must be its completion time as
    /// previously reported by [`Self::next_completion`]).
    pub fn complete(&mut self, now: SimTime, id: FlowId) {
        self.advance(now);
        let f = self.flows.remove(&id).expect("completing unknown flow");
        debug_assert!(
            f.remaining < 1.0,
            "flow completed with {} bytes left",
            f.remaining
        );
        // Account for the sub-byte numerical residue so per-tag totals
        // equal the requested sizes exactly.
        *self.delivered.entry(f.tag).or_default() += f.remaining;
        self.total_delivered += f.remaining;
        self.recompute();
    }

    /// Earliest `(finish_time, flow)` among in-flight flows. Deterministic:
    /// ties resolve to the lowest flow id.
    pub fn next_completion(&self) -> Option<(SimTime, FlowId)> {
        let mut best: Option<(SimTime, FlowId)> = None;
        for (&id, f) in &self.flows {
            let t = if f.remaining <= 0.5 {
                self.last_advance
            } else if f.rate <= 0.0 {
                SimTime::FAR_FUTURE
            } else {
                self.last_advance + SimDuration::from_secs_f64(f.remaining / f.rate)
            };
            match best {
                None => best = Some((t, id)),
                Some((bt, _)) if t < bt => best = Some((t, id)),
                _ => {}
            }
        }
        best
    }

    /// Integrate all flows' progress up to `now`.
    pub fn advance(&mut self, now: SimTime) {
        debug_assert!(now >= self.last_advance, "network time went backwards");
        let dt = now.since(self.last_advance).as_secs_f64();
        if dt > 0.0 {
            for f in self.flows.values_mut() {
                let moved = (f.rate * dt).min(f.remaining);
                f.remaining -= moved;
                *self.delivered.entry(f.tag).or_default() += moved;
                self.total_delivered += moved;
            }
        }
        self.last_advance = now;
    }

    /// Bytes delivered so far for a traffic class.
    pub fn delivered(&self, tag: TrafficTag) -> u64 {
        self.delivered.get(&tag).copied().unwrap_or(0.0).round() as u64
    }

    /// Total bytes delivered across all classes.
    pub fn total_delivered(&self) -> u64 {
        self.total_delivered.round() as u64
    }

    /// Bytes delivered for every migration-attributable class
    /// (everything except [`TrafficTag::AppNet`]).
    pub fn migration_delivered(&self) -> u64 {
        self.delivered
            .iter()
            .filter(|(t, _)| t.is_migration())
            .map(|(_, v)| v)
            .sum::<f64>()
            .round() as u64
    }

    /// Record control-message bytes (modeled latency-only, but the bytes
    /// still appear in the traffic accounting).
    pub fn account_control(&mut self, bytes: u64) {
        *self.delivered.entry(TrafficTag::Control).or_default() += bytes as f64;
        self.total_delivered += bytes as f64;
    }

    /// Current rate of a flow in bytes/second, if in flight.
    pub fn rate_of(&self, id: FlowId) -> Option<f64> {
        self.flows.get(&id).map(|f| f.rate)
    }

    /// Bytes remaining for a flow, if in flight.
    pub fn remaining_of(&self, id: FlowId) -> Option<u64> {
        self.flows.get(&id).map(|f| f.remaining.ceil() as u64)
    }

    /// Progressive-filling max–min fair allocation.
    ///
    /// Resources: per-node uplink (`0..n`), per-node downlink (`n..2n`),
    /// the switch aggregate (`2n`), and one virtual resource per capped
    /// flow. Each iteration saturates the currently most-constrained
    /// resource and freezes the flows crossing it, so the loop runs at most
    /// `|flows|` times.
    fn recompute(&mut self) {
        let n = self.topo.len();
        let nfix = 2 * n + 1;
        if self.flows.is_empty() {
            return;
        }

        // Build the resource table.
        let mut cap_left: Vec<f64> = Vec::with_capacity(nfix + self.flows.len());
        for i in 0..n {
            cap_left.push(self.topo.caps(NodeId(i as u32)).up);
        }
        for i in 0..n {
            cap_left.push(self.topo.caps(NodeId(i as u32)).down);
        }
        cap_left.push(self.topo.switch_capacity);

        // Per-flow resource lists (indices into cap_left).
        let ids: Vec<FlowId> = self.flows.keys().copied().collect();
        let mut flow_res: Vec<[usize; 4]> = Vec::with_capacity(ids.len());
        let mut flow_nres: Vec<u8> = Vec::with_capacity(ids.len());
        for id in &ids {
            let f = &self.flows[id];
            let mut res = [f.src.idx(), n + f.dst.idx(), 2 * n, 0];
            let mut cnt = 3u8;
            if let Some(c) = f.cap {
                res[3] = cap_left.len();
                cap_left.push(c);
                cnt = 4;
            }
            flow_res.push(res);
            flow_nres.push(cnt);
        }

        let nres = cap_left.len();
        let mut count = vec![0u32; nres];
        for (fi, _) in ids.iter().enumerate() {
            for k in 0..flow_nres[fi] as usize {
                count[flow_res[fi][k]] += 1;
            }
        }

        let mut fixed = vec![false; ids.len()];
        let mut unfixed_left = ids.len();
        while unfixed_left > 0 {
            // Most constrained resource: min fair share, lowest index ties.
            let mut best: Option<(f64, usize)> = None;
            for (r, (&cl, &c)) in cap_left.iter().zip(count.iter()).enumerate() {
                if c == 0 {
                    continue;
                }
                let share = (cl / c as f64).max(0.0);
                match best {
                    None => best = Some((share, r)),
                    Some((bs, _)) if share < bs => best = Some((share, r)),
                    _ => {}
                }
            }
            let (share, bottleneck) = best.expect("unfixed flows must cross a resource");

            for (fi, id) in ids.iter().enumerate() {
                if fixed[fi] {
                    continue;
                }
                let res = &flow_res[fi][..flow_nres[fi] as usize];
                if !res.contains(&bottleneck) {
                    continue;
                }
                self.flows.get_mut(id).expect("flow").rate = share;
                fixed[fi] = true;
                unfixed_left -= 1;
                for &r in res {
                    cap_left[r] = (cap_left[r] - share).max(0.0);
                    count[r] -= 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsm_simcore::units::{mb_per_s, MIB};

    fn topo(n: usize) -> Topology {
        Topology::symmetric(n, mb_per_s(100.0), mb_per_s(800.0))
    }

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    const Z: SimTime = SimTime::ZERO;

    #[test]
    fn single_flow_runs_at_nic_speed() {
        let mut net = FlowNet::new(topo(4));
        let f = net.start_flow(Z, NodeId(0), NodeId(1), 100 * MIB, None, TrafficTag::Memory);
        assert!((net.rate_of(f).unwrap() - mb_per_s(100.0)).abs() < 1.0);
    }

    #[test]
    fn per_flow_cap_binds() {
        let mut net = FlowNet::new(topo(4));
        let f = net.start_flow(
            Z,
            NodeId(0),
            NodeId(1),
            100 * MIB,
            Some(mb_per_s(30.0)),
            TrafficTag::Memory,
        );
        assert!((net.rate_of(f).unwrap() - mb_per_s(30.0)).abs() < 1.0);
    }

    #[test]
    fn shared_uplink_splits_fairly() {
        let mut net = FlowNet::new(topo(4));
        let a = net.start_flow(Z, NodeId(0), NodeId(1), 100 * MIB, None, TrafficTag::Memory);
        let b = net.start_flow(Z, NodeId(0), NodeId(2), 100 * MIB, None, TrafficTag::Memory);
        assert!((net.rate_of(a).unwrap() - mb_per_s(50.0)).abs() < 1.0);
        assert!((net.rate_of(b).unwrap() - mb_per_s(50.0)).abs() < 1.0);
    }

    #[test]
    fn incast_splits_downlink() {
        let mut net = FlowNet::new(topo(5));
        let fs: Vec<_> = (1..5)
            .map(|i| {
                net.start_flow(
                    Z,
                    NodeId(i),
                    NodeId(0),
                    100 * MIB,
                    None,
                    TrafficTag::RepoFetch,
                )
            })
            .collect();
        for f in fs {
            assert!((net.rate_of(f).unwrap() - mb_per_s(25.0)).abs() < 1.0);
        }
    }

    #[test]
    fn switch_aggregate_binds_many_disjoint_pairs() {
        // 16 disjoint pairs × 100 MB/s wanted = 1600 > 800 switch capacity.
        let mut net = FlowNet::new(topo(32));
        let fs: Vec<_> = (0..16)
            .map(|i| {
                net.start_flow(
                    Z,
                    NodeId(2 * i),
                    NodeId(2 * i + 1),
                    100 * MIB,
                    None,
                    TrafficTag::StoragePush,
                )
            })
            .collect();
        for f in fs {
            assert!((net.rate_of(f).unwrap() - mb_per_s(50.0)).abs() < 1.0);
        }
    }

    #[test]
    fn capped_flow_frees_bandwidth_for_peer() {
        let mut net = FlowNet::new(topo(4));
        let slow = net.start_flow(
            Z,
            NodeId(0),
            NodeId(1),
            100 * MIB,
            Some(mb_per_s(20.0)),
            TrafficTag::Memory,
        );
        let fast = net.start_flow(Z, NodeId(0), NodeId(2), 100 * MIB, None, TrafficTag::Memory);
        assert!((net.rate_of(slow).unwrap() - mb_per_s(20.0)).abs() < 1.0);
        assert!((net.rate_of(fast).unwrap() - mb_per_s(80.0)).abs() < 1.0);
    }

    #[test]
    fn disjoint_pairs_do_not_interact_below_switch_cap() {
        let mut net = FlowNet::new(topo(4));
        let a = net.start_flow(Z, NodeId(0), NodeId(1), 100 * MIB, None, TrafficTag::Memory);
        let b = net.start_flow(Z, NodeId(2), NodeId(3), 100 * MIB, None, TrafficTag::Memory);
        assert!((net.rate_of(a).unwrap() - mb_per_s(100.0)).abs() < 1.0);
        assert!((net.rate_of(b).unwrap() - mb_per_s(100.0)).abs() < 1.0);
    }

    #[test]
    fn completion_and_conservation() {
        let mut net = FlowNet::new(topo(4));
        let f = net.start_flow(
            Z,
            NodeId(0),
            NodeId(1),
            100 * MIB,
            None,
            TrafficTag::StoragePush,
        );
        let (done, id) = net.next_completion().unwrap();
        assert_eq!(id, f);
        assert!((done.as_secs_f64() - 1.0).abs() < 1e-6);
        net.complete(done, f);
        assert_eq!(net.delivered(TrafficTag::StoragePush), 100 * MIB);
        assert_eq!(net.total_delivered(), 100 * MIB);
        assert_eq!(net.active(), 0);
    }

    #[test]
    fn cancel_reports_partial_delivery() {
        let mut net = FlowNet::new(topo(4));
        let f = net.start_flow(
            Z,
            NodeId(0),
            NodeId(1),
            100 * MIB,
            None,
            TrafficTag::StoragePull,
        );
        let left = net.cancel_flow(t(0.5), f).unwrap();
        assert_eq!(left / MIB, 50);
        assert_eq!(net.delivered(TrafficTag::StoragePull) / MIB, 50);
    }

    #[test]
    fn rates_rebalance_when_flow_finishes() {
        let mut net = FlowNet::new(topo(4));
        let a = net.start_flow(Z, NodeId(0), NodeId(1), 50 * MIB, None, TrafficTag::Memory);
        let b = net.start_flow(Z, NodeId(0), NodeId(2), 100 * MIB, None, TrafficTag::Memory);
        let (ta, ia) = net.next_completion().unwrap();
        assert_eq!(ia, a);
        net.complete(ta, a);
        assert!((net.rate_of(b).unwrap() - mb_per_s(100.0)).abs() < 1.0);
        let (tb, _) = net.next_completion().unwrap();
        // b: 50 MiB in the first second, 50 MiB more at full speed.
        assert!((tb.as_secs_f64() - 1.5).abs() < 1e-6);
    }

    #[test]
    fn control_accounting() {
        let mut net = FlowNet::new(topo(2));
        net.account_control(1500);
        assert_eq!(net.delivered(TrafficTag::Control), 1500);
        assert_eq!(net.total_delivered(), 1500);
    }

    #[test]
    fn migration_delivered_excludes_app_traffic() {
        let mut net = FlowNet::new(topo(4));
        let a = net.start_flow(Z, NodeId(0), NodeId(1), 10 * MIB, None, TrafficTag::AppNet);
        let b = net.start_flow(Z, NodeId(2), NodeId(3), 10 * MIB, None, TrafficTag::Memory);
        let (ta, _) = net.next_completion().unwrap();
        net.complete(ta, a);
        let (tb, _) = net.next_completion().unwrap();
        net.complete(tb, b);
        assert_eq!(net.migration_delivered(), 10 * MIB);
        assert_eq!(net.total_delivered(), 20 * MIB);
    }

    #[test]
    #[should_panic(expected = "loopback")]
    fn loopback_flows_rejected() {
        let mut net = FlowNet::new(topo(2));
        let _ = net.start_flow(Z, NodeId(1), NodeId(1), 1, None, TrafficTag::Memory);
    }

    #[test]
    fn zero_byte_flow_completes_now() {
        let mut net = FlowNet::new(topo(2));
        let f = net.start_flow(t(2.0), NodeId(0), NodeId(1), 0, None, TrafficTag::Control);
        let (done, id) = net.next_completion().unwrap();
        assert_eq!((done, id), (t(2.0), f));
    }
}
