//! Migration orchestration: memory rounds, the push/pull pipelines,
//! control transfer, and completion — the engine-side realization of
//! Figure 2 of the paper.

use super::io;
use super::job::{FailureReason, JobId, MigrationStatus};
use super::report::Milestone;
use super::types::*;
use super::Engine;
use crate::error::EngineError;
use crate::policy::{HybridDest, HybridSource, MirrorSource, PrecopySource, StrategyKind};
use lsm_blockdev::{ChunkId, ChunkSet};
use lsm_hypervisor::{MemoryProfile, NextStep, PostcopyMemory, PostcopyStep, PrecopyMemory};
use lsm_netsim::TrafficTag;
use lsm_simcore::time::SimDuration;
use std::collections::HashMap;

/// Poll interval while a stop-and-copy waits on storage convergence.
const LINGER_POLL: SimDuration = SimDuration::from_millis(100);
/// Minimum dirtied bytes worth an extra linger memory round.
const LINGER_ROUND_MIN: u64 = 1 << 20;

pub(crate) fn start_migration(eng: &mut Engine, job: JobId) {
    let now = eng.now();
    let (v, dest) = {
        let j = eng.job(job);
        if j.status.is_terminal() {
            // Failed before it began (e.g. the destination crashed while
            // the job was still queued).
            return;
        }
        (j.vm, j.dest)
    };
    // Faults may have raced the start event: a migration cannot begin
    // toward a dead destination or from under a dead guest.
    if eng.node_crashed(dest) {
        eng.fail_job_reason(job, FailureReason::DestinationCrashed { node: dest });
        return;
    }
    if eng.vm(v).crashed {
        let node = eng.vm(v).vm.host;
        eng.fail_job_reason(job, FailureReason::SourceCrashed { node });
        return;
    }
    let source = eng.vm(v).vm.host;
    // Schedule-time validation rejects these up front; they can recur
    // here only when the engine is driven below the checked API (e.g. a
    // VM migrated by external state mutation between schedule and
    // start). Runtime policy: park the job at Failed, never panic.
    if source == dest {
        eng.fail_job(job, EngineError::SameHost { vm: v, node: dest });
        return;
    }
    match eng.vm(v).migration.as_ref().map(|m| m.phase) {
        // A finished (or aborted) migration moves into its job's archive
        // so this one can use the per-VM slot (migrate-again support —
        // including re-migration after a destination crash or deadline).
        Some(MigPhase::Complete | MigPhase::Aborted) => eng.archive_vm_migration(v, job),
        Some(_) => {
            eng.fail_job(job, EngineError::DuplicateMigration { vm: v });
            return;
        }
        None => {}
    }

    // Memory profile: the workload's guest-RAM footprint. The host page
    // cache is *not* guest memory and does not migrate — the destination
    // host starts cold (which is why reads there can need on-demand
    // pulls, §4.3).
    let spec = eng.vm(v).driver.as_ref().expect("driver").mem_spec();
    let ram = eng.vm(v).vm.ram_bytes;
    let touched = spec.touched_bytes.min(ram);
    let wss = spec.wss_bytes.min(touched);
    let profile = MemoryProfile::new(ram, touched, wss, spec.anon_dirty_rate);
    let mut mem = PrecopyMemory::new(profile, eng.cfg().mem);

    let strategy = eng.vm(v).strategy;
    let threshold = eng.cfg().threshold;
    let nchunks = eng.cfg().nchunks();
    // A retried attempt resumes from its transfer checkpoint (the
    // surviving destination's chunk store): chunks whose stamped
    // versions still match the authoritative disk are dropped from the
    // initial source manifest — never re-sent — and the checkpoint
    // store becomes the new attempt's destination store below. Absent
    // `[resilience]` (or with the checkpoint invalidated) `resume` is
    // `None` and this is the unfiltered PR 6 path.
    let resume = super::resilient::take_resume(eng, job, dest);
    let mut resumed_chunks: u64 = 0;
    let (hybrid_src, precopy_src, mirror_src) = {
        let disk = &eng.vm(v).disk;
        let mut seed = |mut set: ChunkSet| -> ChunkSet {
            if let Some(store) = resume.as_ref() {
                for c in store.present().iter() {
                    if set.contains(c) && store.version(c) == disk.version(c) {
                        set.remove(c);
                        resumed_chunks += 1;
                    }
                }
            }
            set
        };
        match strategy {
            StrategyKind::Hybrid => (
                Some(HybridSource::start(
                    &seed(disk.modified().clone()),
                    threshold,
                    true,
                )),
                None,
                None,
            ),
            StrategyKind::Postcopy => (
                Some(HybridSource::start(
                    &seed(disk.modified().clone()),
                    threshold,
                    false,
                )),
                None,
                None,
            ),
            StrategyKind::Precopy => (
                None,
                Some(PrecopySource::start(seed(disk.locally_present()))),
                None,
            ),
            StrategyKind::Mirror => (
                None,
                None,
                Some(MirrorSource::start(seed(disk.locally_present()))),
            ),
            StrategyKind::SharedFs => (None, None, None),
        }
    };
    if resumed_chunks > 0 {
        let bytes = resumed_chunks * eng.cfg().chunk_size;
        super::resilient::record_resumed(eng, job, bytes);
    }

    // Memory strategy: iterative pre-copy (the paper's setting) or
    // post-copy (§6 future work — the memory-independence ablation).
    // Pre-copy-style storage strategies cannot work under post-copy
    // memory: they have no pull path, so the disk *must* converge before
    // control moves — but post-copy hands control over immediately
    // (QEMU's block migration is likewise coupled to pre-copy memory).
    let postcopy_memory = eng.cfg().postcopy_memory;
    if postcopy_memory
        && matches!(
            eng.vm(v).strategy,
            StrategyKind::Precopy | StrategyKind::Mirror
        )
    {
        let strategy = eng.vm(v).strategy;
        eng.fail_job(job, EngineError::IncompatibleMemoryStrategy { strategy });
        return;
    }
    let (first, postcopy_mem) = if postcopy_memory {
        let hot = (64u64 << 20).min(touched);
        let mut pm = PostcopyMemory::new(profile, hot);
        let PostcopyStep::Handover { bytes } = pm.start() else {
            unreachable!("start returns Handover");
        };
        (bytes, Some(pm))
    } else {
        (mem.start(), None)
    };
    let downtime_before = eng.vm(v).vm.total_downtime();
    eng.vm_mut(v).dest_store = Some(match resume {
        // The checkpoint's stamped chunks ARE the resumed progress.
        Some(store) => store,
        None => lsm_blockdev::ChunkStore::new(nchunks),
    });
    // New migration generation: completions of any still-in-flight disk
    // reads issued by a previous (aborted) migration of this VM now
    // carry a stale epoch and will be dropped on arrival.
    eng.vm_mut(v).mig_epoch += 1;
    eng.vm_mut(v).migration = Some(MigrationRt {
        strategy,
        dest,
        source,
        phase: if postcopy_memory {
            MigPhase::StopAndCopy
        } else {
            MigPhase::Active
        },
        mem,
        postcopy_mem,
        round_started: now,
        round_bytes: first,
        io_dirty_accum: 0.0,
        linger_rounds: 0,
        pending_stop_bytes: 0,
        hybrid_src,
        hybrid_dst: None,
        precopy_src,
        mirror_src,
        push_slots_busy: 0,
        pull_slots_busy: 0,
        pulls_inflight: 0,
        pull_waiters: HashMap::new(),
        source_store: None,
        final_chunks: Vec::new(),
        mirror_flows_inflight: 0,
        handoff_sent: false,
        stalled_until: None,
        stalled_ondemand: Vec::new(),
        requested_at: now,
        control_at: None,
        completed_at: None,
        mem_rounds: 1,
        throttled: false,
        pushed_chunks: 0,
        pulled_chunks: 0,
        ondemand_chunks: 0,
        consistent: None,
        downtime_before,
        downtime: SimDuration::ZERO,
        throttle_step: 0,
        converge_hot_rounds: 0,
        downtime_deferrals: 0,
        downtime_round: false,
        mem_streams_inflight: 0,
        degraded_secs: 0.0,
        degrade_mark: now,
        degrade_loss: 0.0,
        timeline: Vec::new(),
    });
    eng.note_milestone(v, Milestone::Requested);
    eng.set_job_status(job, MigrationStatus::TransferringMemory);

    eng.send_ctl(source, dest, Ctl::MigrationNotify { vm: v });
    if postcopy_memory {
        // Post-copy hands control over immediately: pause, ship the hot
        // set, resume at the destination. The storage push phase gets no
        // window — the hybrid scheme degenerates to prioritized pulling,
        // exactly what §6 anticipates examining.
        eng.vm_mut(v).vm.pause(now);
        eng.note_milestone(v, Milestone::StopAndCopy);
        eng.set_job_status(job, MigrationStatus::SwitchingOver);
        eng.update_compute(v);
        super::qos::start_mem_copy(eng, v, source, dest, first, true);
        return;
    }
    super::qos::start_mem_copy(eng, v, source, dest, first, false);
    pump_push(eng, v);
    eng.update_compute(v);
}

pub(crate) fn ctl_arrive(eng: &mut Engine, _node: u32, msg: Ctl) {
    match msg {
        Ctl::MigrationNotify { vm: _ } => {
            // Destination manager now accepts pushed chunks; in the model
            // the push pipeline handles this implicitly.
        }
        Ctl::TransferIoControl {
            vm,
            remaining,
            counts,
        } => transfer_io_control(eng, vm, remaining, counts),
        Ctl::PullRequest {
            vm,
            chunks,
            background,
            epoch,
        } => {
            // Serve the pull from the source's disk — unless the
            // migration was aborted (fault/deadline) while the request
            // was on the wire (possibly with a successor migration
            // already running: the epoch check catches that), in which
            // case it is dropped like any other message for a dead
            // transfer.
            if eng.vm(vm).mig_epoch != epoch {
                return;
            }
            let source = match eng.vm(vm).migration.as_ref() {
                Some(mig) if mig.phase == MigPhase::PullPhase => mig.source,
                _ => return,
            };
            let bytes = eng.cfg().chunk_size * chunks.len() as u64;
            eng.disk_submit(
                source,
                bytes,
                DiskCtx::PullRead {
                    vm,
                    chunks,
                    background,
                    epoch,
                },
            );
        }
    }
}

// ---------------- memory rounds ----------------

/// Dirty bytes accumulated since the round started: anonymous-memory
/// churn plus guest page-cache dirtying from buffered writes.
fn take_round_dirt(eng: &mut Engine, v: VmIdx) -> (u64, f64) {
    let now = eng.now();
    let mig = eng.vm_mut(v).migration.as_mut().expect("migrating");
    let wall = now.since(mig.round_started).as_secs_f64();
    let anon = mig.mem.profile().base_dirty_rate * wall;
    let dirtied = (anon + mig.io_dirty_accum) as u64;
    mig.io_dirty_accum = 0.0;
    let rate = if wall > 1e-9 {
        mig.round_bytes as f64 / wall
    } else {
        f64::MAX
    };
    (dirtied, rate)
}

/// Storage-side gate for the stop-and-copy.
///
/// Only the strategies whose migration *ends at* control transfer must be
/// fully converged before the pause (pre-copy block migration and
/// mirroring, §3) — including any in-flight write-backs, whose manager
/// writes would otherwise land after the final snapshot. The hybrid and
/// postcopy schemes never gate the stop-and-copy on storage: that is the
/// paper's central design point ("storage does not delay in any way the
/// transfer of control", §4.1) — their write-backs are instead drained
/// before the remaining-set handoff.
fn storage_converged(eng: &Engine, v: VmIdx) -> bool {
    let vm = eng.vm(v);
    let mig = vm.migration.as_ref().expect("migrating");
    match mig.strategy {
        StrategyKind::Precopy => {
            mig.precopy_src.as_ref().expect("precopy").converged() && mig.push_slots_busy == 0
        }
        StrategyKind::Mirror => {
            mig.mirror_src.as_ref().expect("mirror").converged()
                && mig.push_slots_busy == 0
                && mig.mirror_flows_inflight == 0
        }
        _ => true,
    }
}

pub(crate) fn mem_round_done(eng: &mut Engine, v: VmIdx) {
    let now = eng.now();
    // Defensive: a fault may have aborted the migration while this
    // round's completion was already being delivered.
    let Some(phase) = eng.vm(v).migration.as_ref().map(|m| m.phase) else {
        return;
    };
    if matches!(phase, MigPhase::Complete | MigPhase::Aborted) {
        return;
    }
    // Multifd: the round completes when its last shard lands.
    if !super::qos::mem_copy_shard_done(eng, v) {
        return;
    }
    let (dirtied, rate) = take_round_dirt(eng, v);
    // A downtime-deferral round finished: its backlog is delivered,
    // whatever dirtied meanwhile becomes the new stop backlog, and the
    // stop is retried. The pre-copy memory machine already decided to
    // stop and is not consulted again.
    if eng
        .vm(v)
        .migration
        .as_ref()
        .is_some_and(|m| m.downtime_round)
    {
        {
            let mig = eng.vm_mut(v).migration.as_mut().expect("migrating");
            mig.downtime_round = false;
            mig.pending_stop_bytes = dirtied;
        }
        try_stop(eng, v);
        return;
    }
    match phase {
        MigPhase::Active => {
            let step = {
                let mig = eng.vm_mut(v).migration.as_mut().expect("migrating");
                mig.mem.round_done(dirtied, rate)
            };
            match step {
                NextStep::Round { bytes } => {
                    // Auto-converge inspects the finished round's dirty
                    // flux before the next round rearms the clock.
                    super::resilient::auto_converge_round(eng, v, dirtied);
                    start_mem_round(eng, v, bytes);
                }
                NextStep::StopAndCopy { bytes, throttled } => {
                    {
                        let mig = eng.vm_mut(v).migration.as_mut().expect("migrating");
                        mig.throttled |= throttled;
                        mig.pending_stop_bytes = bytes;
                    }
                    try_stop(eng, v);
                }
            }
        }
        MigPhase::Linger => {
            // An engine-driven linger round finished.
            {
                let mig = eng.vm_mut(v).migration.as_mut().expect("migrating");
                mig.round_bytes = 0;
                mig.round_started = now;
                // Linger rounds re-send freshly dirtied memory; the
                // pending stop stays what the machine computed.
                let _ = dirtied;
            }
            linger_step(eng, v, dirtied);
        }
        _ => {
            // Stale completion after a phase change; nothing to do.
        }
    }
}

fn start_mem_round(eng: &mut Engine, v: VmIdx, bytes: u64) {
    let now = eng.now();
    let (source, dest, round) = {
        let mig = eng.vm_mut(v).migration.as_mut().expect("migrating");
        mig.mem_rounds += 1;
        mig.round_started = now;
        mig.round_bytes = bytes;
        (mig.source, mig.dest, mig.mem_rounds)
    };
    eng.note_milestone(v, Milestone::MemRound(round));
    super::qos::start_mem_copy(eng, v, source, dest, bytes, false);
}

/// Attempt the stop-and-copy; if storage has not converged, enter the
/// linger phase (extra memory rounds while the block/bulk stream drains).
fn try_stop(eng: &mut Engine, v: VmIdx) {
    if storage_converged(eng, v) {
        initiate_stop(eng, v, false);
        return;
    }
    {
        let now = eng.now();
        let mig = eng.vm_mut(v).migration.as_mut().expect("migrating");
        mig.phase = MigPhase::Linger;
        mig.round_started = now;
        mig.round_bytes = 0;
    }
    eng.schedule_in(LINGER_POLL, Ev::ConvergencePoll(v));
}

/// Linger bookkeeping: either converged (stop), over the cap (force), or
/// keep re-sending dirtied memory / polling.
fn linger_step(eng: &mut Engine, v: VmIdx, dirtied: u64) {
    if storage_converged(eng, v) {
        initiate_stop(eng, v, false);
        return;
    }
    let (rounds, cap) = {
        let mig = eng.vm(v).migration.as_ref().expect("migrating");
        (mig.linger_rounds, eng.cfg().linger_round_cap)
    };
    if rounds >= cap {
        initiate_stop(eng, v, true);
        return;
    }
    if dirtied >= LINGER_ROUND_MIN {
        // Another memory round carrying the fresh dirt.
        let now = eng.now();
        let (source, dest) = {
            let mig = eng.vm_mut(v).migration.as_mut().expect("migrating");
            mig.linger_rounds += 1;
            mig.mem_rounds += 1;
            mig.round_started = now;
            mig.round_bytes = dirtied;
            (mig.source, mig.dest)
        };
        super::qos::start_mem_copy(eng, v, source, dest, dirtied, false);
    } else {
        eng.schedule_in(LINGER_POLL, Ev::ConvergencePoll(v));
    }
}

pub(crate) fn convergence_poll(eng: &mut Engine, v: VmIdx) {
    let in_linger = eng
        .vm(v)
        .migration
        .as_ref()
        .map(|m| m.phase == MigPhase::Linger && m.round_bytes == 0)
        .unwrap_or(false);
    if !in_linger {
        return; // stale poll
    }
    let (dirtied, _) = take_round_dirt(eng, v);
    let now = eng.now();
    eng.vm_mut(v)
        .migration
        .as_mut()
        .expect("migrating")
        .round_started = now;
    linger_step(eng, v, dirtied);
}

/// Pause the VM and flush the final memory (plus, on forced convergence,
/// every chunk the storage stream still owed).
fn initiate_stop(eng: &mut Engine, v: VmIdx, force_storage: bool) {
    let now = eng.now();
    // A switchover that would blow the hard downtime budget rides one
    // more live copy round instead (bounded; never on the forced path —
    // the linger cap already decided liveness beats the budget there).
    if !force_storage && super::resilient::defer_switchover(eng, v) {
        return;
    }
    let mut extra_chunks: Vec<ChunkId> = Vec::new();
    if force_storage {
        let mig = eng.vm_mut(v).migration.as_mut().expect("migrating");
        mig.throttled = true;
        if let Some(src) = mig.precopy_src.as_mut() {
            extra_chunks = src_drain_precopy(src);
        }
        if let Some(src) = mig.mirror_src.as_mut() {
            while let Some(c) = src.next_send() {
                src.send_done();
                extra_chunks.push(c);
            }
        }
    }
    let chunk_size = eng.cfg().chunk_size;
    let (source, dest, bytes) = {
        let mig = eng.vm_mut(v).migration.as_mut().expect("migrating");
        mig.phase = MigPhase::StopAndCopy;
        mig.final_chunks.extend(extra_chunks);
        let bytes = mig.pending_stop_bytes + mig.final_chunks.len() as u64 * chunk_size;
        (mig.source, mig.dest, bytes)
    };
    eng.note_milestone(v, Milestone::StopAndCopy);
    if let Some(job) = eng.job_for_vm(lsm_hypervisor::VmId(v)) {
        eng.set_job_status(job, MigrationStatus::SwitchingOver);
    }
    eng.vm_mut(v).vm.pause(now);
    eng.update_compute(v);
    super::qos::start_mem_copy(eng, v, source, dest, bytes, true);
}

fn src_drain_precopy(src: &mut PrecopySource) -> Vec<ChunkId> {
    let mut out = Vec::new();
    while let Some(c) = src.next_send() {
        src.send_done();
        out.push(c);
    }
    out
}

pub(crate) fn mem_stop_done(eng: &mut Engine, v: VmIdx) {
    match eng.vm(v).migration.as_ref().map(|m| m.phase) {
        None | Some(MigPhase::Complete | MigPhase::Aborted) => return,
        Some(_) => {}
    }
    // Multifd: the stop flush completes when its last shard lands.
    if !super::qos::mem_copy_shard_done(eng, v) {
        return;
    }
    // Apply the force-flushed chunks at the destination (they travelled
    // inside the stop-and-copy flush).
    let finals = std::mem::take(
        &mut eng
            .vm_mut(v)
            .migration
            .as_mut()
            .expect("migrating")
            .final_chunks,
    );
    if !finals.is_empty() {
        let vm = eng.vm_mut(v);
        let mig = vm.migration.as_mut().expect("migrating");
        let ds = vm.dest_store.as_mut().expect("dest store");
        for c in &finals {
            let ver = vm.store.version(*c);
            ds.apply(*c, ver);
            mig.pushed_chunks += 1;
        }
    }
    let strategy = {
        let mig = eng.vm_mut(v).migration.as_mut().expect("migrating");
        if mig.postcopy_mem.is_none() {
            mig.mem.finish();
        }
        mig.strategy
    };
    match strategy {
        StrategyKind::Hybrid | StrategyKind::Postcopy => {
            eng.vm_mut(v).migration.as_mut().expect("migrating").phase = MigPhase::SyncDrain;
            maybe_handoff(eng, v);
        }
        StrategyKind::Precopy | StrategyKind::Mirror | StrategyKind::SharedFs => {
            control_transfer(eng, v);
            maybe_complete(eng, v);
        }
    }
}

/// The hypervisor's `sync`: the source hands the destination the
/// remaining set and the write counts (Figure 2, "Send list of remaining
/// chunks").
fn do_handoff(eng: &mut Engine, v: VmIdx) {
    let (source, dest, remaining, counts) = {
        let mig = eng.vm_mut(v).migration.as_mut().expect("migrating");
        let (remaining, counts) = mig.hybrid_src.as_mut().expect("hybrid source").handoff();
        (mig.source, mig.dest, remaining, counts)
    };
    eng.note_milestone(v, Milestone::RemainingSetSent);
    eng.send_ctl(
        source,
        dest,
        Ctl::TransferIoControl {
            vm: v,
            remaining,
            counts,
        },
    );
}

fn transfer_io_control(eng: &mut Engine, v: VmIdx, remaining: ChunkSet, counts: Vec<u32>) {
    let prioritized = eng.cfg().prefetch_priority;
    {
        // The handoff message may arrive after a fault aborted the
        // migration: control then *stays* at the source.
        let Some(mig) = eng.vm_mut(v).migration.as_mut() else {
            return;
        };
        if mig.phase != MigPhase::SyncDrain {
            return;
        }
        mig.hybrid_dst = Some(HybridDest::start(remaining, &counts, prioritized));
        mig.phase = MigPhase::PullPhase;
    }
    if let Some(job) = eng.job_for_vm(lsm_hypervisor::VmId(v)) {
        eng.set_job_status(job, MigrationStatus::TransferringStorage);
    }
    control_transfer(eng, v);
    pump_pull(eng, v);
    maybe_complete(eng, v);
}

/// Control moves to the destination: swap the physical stores, drop the
/// source's cached base chunks, resume the guest on the new host.
fn control_transfer(eng: &mut Engine, v: VmIdx) {
    let now = eng.now();
    {
        let vm = eng.vm_mut(v);
        let mig = vm.migration.as_mut().expect("migrating");
        mig.control_at = Some(now);
        // Switchover releases the auto-converge throttle (the
        // update_compute below makes it take effect).
        super::resilient::release_throttle(mig);
        let dest_store = vm.dest_store.take().expect("dest store");
        let source_store = std::mem::replace(&mut vm.store, dest_store);
        mig.source_store = Some(source_store);
        let dest = mig.dest;
        vm.disk.demote_cached_base();
        // The source host's page cache stays behind; the destination
        // host starts with exactly the pushed chunks warm (they were
        // just written through its page cache). Disjoint field borrows:
        // no intermediate collection of the (possibly huge) present set.
        vm.cache.clear();
        vm.kupdate_credit = 0;
        let (store, cache) = (&vm.store, &mut vm.cache);
        for c in store.present().iter() {
            cache.fill(c);
        }
        vm.vm.resume(now, Some(dest));
    }
    eng.note_milestone(v, Milestone::ControlTransferred);
    eng.update_compute(v);
    eng.release_held(v);
    io::pump_writeback(eng, v);

    // Post-copy memory: kick off the background page pull now that the
    // guest runs at the destination.
    let pull = {
        let mig = eng.vm_mut(v).migration.as_mut().expect("migrating");
        mig.postcopy_mem.as_mut().map(|pm| {
            let PostcopyStep::BackgroundPull { bytes } = pm.handover_done() else {
                unreachable!("handover_done returns BackgroundPull");
            };
            (mig.source, mig.dest, bytes)
        })
    };
    if let Some((source, dest, bytes)) = pull {
        let cap = super::qos::post_pull_cap(eng);
        let wire = super::qos::wire_bytes_mem(eng, bytes);
        eng.start_flow(
            source,
            dest,
            wire,
            cap,
            TrafficTag::Memory,
            FlowCtx::MemPostPull { vm: v },
        );
        eng.update_compute(v); // fault slowdown while pulling
    }
}

/// The post-copy background memory pull finished.
pub(crate) fn mem_post_pull_done(eng: &mut Engine, v: VmIdx) {
    let Some(mig) = eng.vm_mut(v).migration.as_mut() else {
        return;
    };
    if matches!(mig.phase, MigPhase::Complete | MigPhase::Aborted) {
        return;
    }
    mig.postcopy_mem
        .as_mut()
        .expect("post-copy memory")
        .pull_done();
    eng.update_compute(v);
    maybe_complete(eng, v);
}

// ---------------- push pipeline (source side) ----------------

fn next_source_chunk(mig: &mut MigrationRt) -> Option<ChunkId> {
    if let Some(src) = mig.hybrid_src.as_mut() {
        return src.next_push();
    }
    if let Some(src) = mig.precopy_src.as_mut() {
        return src.next_send();
    }
    if let Some(src) = mig.mirror_src.as_mut() {
        return src.next_send();
    }
    None
}

pub(crate) fn pump_push(eng: &mut Engine, v: VmIdx) {
    let batch_max = eng.cfg().transfer_batch as usize;
    let window = eng.cfg().transfer_window;
    let chunk_size = eng.cfg().chunk_size;
    loop {
        let (batch, source) = {
            let Some(mig) = eng.vm_mut(v).migration.as_mut() else {
                return;
            };
            if !matches!(mig.phase, MigPhase::Active | MigPhase::Linger) {
                return;
            }
            if mig.stalled_until.is_some() {
                return; // transfer stall: initiate nothing until it clears
            }
            if mig.push_slots_busy >= window {
                return;
            }
            // Versions are placeholders here; they are stamped in place
            // when the source disk read completes (send time).
            let mut batch: Vec<(ChunkId, u64)> = Vec::with_capacity(batch_max);
            while batch.len() < batch_max {
                match next_source_chunk(mig) {
                    Some(c) => batch.push((c, 0)),
                    None => break,
                }
            }
            if batch.is_empty() {
                return;
            }
            mig.push_slots_busy += 1;
            (batch, mig.source)
        };
        let epoch = eng.vm(v).mig_epoch;
        let bytes = chunk_size * batch.len() as u64;
        eng.disk_submit(
            source,
            bytes,
            DiskCtx::PushRead {
                vm: v,
                chunks: batch,
                slot: 0,
                epoch,
            },
        );
    }
}

pub(crate) fn push_read_done(
    eng: &mut Engine,
    v: VmIdx,
    mut chunks: Vec<(ChunkId, u64)>,
    slot: u32,
    epoch: u64,
) {
    if eng.vm(v).mig_epoch != epoch {
        return; // issued by an aborted predecessor migration: drop
    }
    {
        // A transfer stall declared while the source read was in flight:
        // the wire is down, so the batch never leaves — its chunks go
        // back to the surviving manifest like a severed flow's.
        let vm = eng.vm_mut(v);
        let Some(mig) = vm.migration.as_mut() else {
            return;
        };
        if matches!(mig.phase, MigPhase::Complete | MigPhase::Aborted) {
            return; // aborted while the source read was in flight
        }
        if mig.stalled_until.is_some() {
            mig.push_slots_busy -= 1;
            for (c, _) in chunks {
                requeue_lost_push(mig, c);
            }
            return;
        }
    }
    let (source, dest) = {
        let vm = eng.vm(v);
        let mig = vm.migration.as_ref().expect("checked above");
        let store = mig.source_store.as_ref().unwrap_or(&vm.store);
        // Stamp versions at send time, in place: the manifest allocation
        // made at pump time travels through disk read and flow untouched.
        for e in &mut chunks {
            e.1 = store.version(e.0);
        }
        (mig.source, mig.dest)
    };
    let bytes = super::qos::wire_bytes_storage(eng, eng.cfg().chunk_size * chunks.len() as u64);
    let cap = super::qos::storage_flow_cap(eng);
    eng.start_flow(
        source,
        dest,
        bytes,
        cap,
        TrafficTag::StoragePush,
        FlowCtx::PushBatch {
            vm: v,
            chunks,
            slot,
            epoch,
        },
    );
}

/// Return one lost pushed chunk to whichever strategy source owns it.
pub(crate) fn requeue_lost_push(mig: &mut MigrationRt, c: ChunkId) {
    if let Some(src) = mig.hybrid_src.as_mut() {
        src.push_lost(c);
    }
    if let Some(src) = mig.precopy_src.as_mut() {
        src.send_lost(c);
    }
    if let Some(src) = mig.mirror_src.as_mut() {
        src.send_lost(c);
    }
}

pub(crate) fn push_batch_arrived(
    eng: &mut Engine,
    v: VmIdx,
    chunks: Vec<(ChunkId, u64)>,
    _slot: u32,
    epoch: u64,
) {
    if eng.vm(v).mig_epoch != epoch {
        return; // stale batch of an aborted predecessor migration
    }
    let bytes = eng.cfg().chunk_size * chunks.len() as u64;
    let dest = {
        let vm = eng.vm_mut(v);
        let Some(mig) = vm.migration.as_mut() else {
            return;
        };
        if matches!(mig.phase, MigPhase::Complete | MigPhase::Aborted) {
            return;
        }
        let store = vm.dest_store.as_mut().unwrap_or(&mut vm.store);
        for &(c, ver) in &chunks {
            store.apply(c, ver);
            if let Some(src) = mig.hybrid_src.as_mut() {
                src.push_done(c);
            }
            if let Some(src) = mig.precopy_src.as_mut() {
                src.send_done();
            }
            if let Some(src) = mig.mirror_src.as_mut() {
                src.send_done();
            }
        }
        mig.pushed_chunks += chunks.len() as u64;
        mig.push_slots_busy -= 1;
        mig.dest
    };
    eng.ingest(dest, bytes);
    pump_push(eng, v);
    maybe_handoff(eng, v);
}

/// Fire the remaining-set handoff once the push pipeline has drained
/// after the stop-and-copy (in-flight pushes finish over TCP before the
/// source sends the remaining-chunk list, Figure 2).
pub(crate) fn maybe_handoff(eng: &mut Engine, v: VmIdx) {
    let ready = {
        let vm = eng.vm(v);
        match vm.migration.as_ref() {
            Some(mig) => {
                mig.phase == MigPhase::SyncDrain
                    && !mig.handoff_sent
                    && mig.push_slots_busy == 0
                    // A stall blocks the handoff too: chunks of severed
                    // batches must be back in the remaining set first.
                    && mig.stalled_until.is_none()
            }
            None => false,
        }
    };
    if ready {
        eng.vm_mut(v)
            .migration
            .as_mut()
            .expect("migrating")
            .handoff_sent = true;
        do_handoff(eng, v);
    }
}

// ---------------- pull pipeline (destination side) ----------------

pub(crate) fn pump_pull(eng: &mut Engine, v: VmIdx) {
    // One request (and later one flow + one completion event) carries up
    // to `transfer_batch` chunks; `transfer_window` batches may be in
    // flight, so the outstanding-chunk budget matches the pre-batching
    // pipeline (window × batch single-chunk requests).
    let window = eng.cfg().transfer_window;
    let batch_max = eng.cfg().transfer_batch as usize;
    loop {
        let req = {
            let Some(mig) = eng.vm_mut(v).migration.as_mut() else {
                return;
            };
            if mig.phase != MigPhase::PullPhase || mig.pull_slots_busy >= window {
                return;
            }
            if mig.stalled_until.is_some() {
                return; // transfer stall: initiate nothing until it clears
            }
            let dst_state = mig.hybrid_dst.as_mut().expect("dest state");
            let mut batch = Vec::with_capacity(batch_max);
            while batch.len() < batch_max {
                match dst_state.next_pull() {
                    Some(c) => batch.push(c),
                    None => break,
                }
            }
            if batch.is_empty() {
                return;
            }
            mig.pull_slots_busy += 1;
            mig.pulls_inflight += 1;
            (mig.dest, mig.source, batch)
        };
        let (dest, source, batch) = req;
        let epoch = eng.vm(v).mig_epoch;
        eng.send_ctl(
            dest,
            source,
            Ctl::PullRequest {
                vm: v,
                chunks: batch,
                background: true,
                epoch,
            },
        );
    }
}

pub(crate) fn pull_read_done(
    eng: &mut Engine,
    v: VmIdx,
    chunks: Vec<ChunkId>,
    background: bool,
    epoch: u64,
) {
    if eng.vm(v).mig_epoch != epoch {
        return; // issued by an aborted predecessor migration: drop
    }
    {
        // Stall declared while the source read was in flight: the wire
        // is down — release the pipeline slot and return the chunks to
        // the prefetch manifest (their waiters stay parked; the resumed
        // pull re-delivers).
        let vm = eng.vm_mut(v);
        let Some(mig) = vm.migration.as_mut() else {
            return;
        };
        if mig.phase != MigPhase::PullPhase {
            return; // aborted while the source read was in flight
        }
        if mig.stalled_until.is_some() {
            if background {
                mig.pull_slots_busy -= 1;
            }
            mig.pulls_inflight -= 1;
            if let Some(dst) = mig.hybrid_dst.as_mut() {
                for c in chunks {
                    dst.pull_lost(c);
                }
            }
            return;
        }
    }
    let (source, dest, withver) = {
        let vm = eng.vm(v);
        let mig = vm.migration.as_ref().expect("checked above");
        let store = mig.source_store.as_ref().unwrap_or(&vm.store);
        // The only manifest allocation of the pull path: versions are
        // captured at send time and the vector moves into the flow
        // context (no clone, no per-chunk flow registry).
        let withver: Vec<(ChunkId, u64)> = chunks.iter().map(|&c| (c, store.version(c))).collect();
        (mig.source, mig.dest, withver)
    };
    let bytes = super::qos::wire_bytes_storage(eng, eng.cfg().chunk_size * chunks.len() as u64);
    let cap = super::qos::storage_flow_cap(eng);
    eng.start_flow(
        source,
        dest,
        bytes,
        cap,
        TrafficTag::StoragePull,
        FlowCtx::PullBatch {
            vm: v,
            chunks: withver,
            background,
            epoch,
        },
    );
}

pub(crate) fn pull_batch_arrived(
    eng: &mut Engine,
    v: VmIdx,
    chunks: Vec<(ChunkId, u64)>,
    background: bool,
    epoch: u64,
) {
    if eng.vm(v).mig_epoch != epoch {
        return; // stale batch of an aborted predecessor migration
    }
    let bytes = eng.cfg().chunk_size * chunks.len() as u64;
    let mut waiters: Vec<OpId> = Vec::new();
    let dest = {
        let vm = eng.vm_mut(v);
        let Some(mig) = vm.migration.as_mut() else {
            return;
        };
        if mig.phase != MigPhase::PullPhase {
            return;
        }
        // Per-chunk completions delivered from the batch manifest, in
        // manifest (chunk-request) order. A chunk superseded by a local
        // write mid-flight arrives with a stale version: the store
        // rejects it and the destination state saw `on_write` already.
        for &(c, ver) in &chunks {
            let applied = vm.store.apply(c, ver);
            if applied && !vm.cache.is_dirty(c) {
                // The pulled content just streamed through this host's
                // page cache: it is resident (and supersedes any stale
                // clean copy).
                vm.cache.invalidate(c);
                vm.cache.fill(c);
            }
            if let Some(dst) = mig.hybrid_dst.as_mut() {
                dst.pull_done(c);
            }
            mig.pulled_chunks += 1;
            if let Some(w) = mig.pull_waiters.remove(&c) {
                waiters.extend(w);
            }
        }
        if background {
            mig.pull_slots_busy -= 1;
        }
        mig.pulls_inflight -= 1;
        mig.dest
    };
    for op in waiters {
        eng.op_part_done(op);
    }
    eng.ingest(dest, bytes);
    pump_pull(eng, v);
    maybe_complete(eng, v);
}

// ---------------- mirror writes ----------------

pub(crate) fn mirror_write_arrived(
    eng: &mut Engine,
    v: VmIdx,
    op: Option<OpId>,
    chunks: Vec<(ChunkId, u64)>,
) {
    {
        let vm = eng.vm_mut(v);
        if let Some(mig) = vm.migration.as_mut() {
            if !matches!(mig.phase, MigPhase::Complete | MigPhase::Aborted) {
                let store = vm.dest_store.as_mut().unwrap_or(&mut vm.store);
                for &(c, ver) in &chunks {
                    store.apply(c, ver);
                }
                mig.mirror_flows_inflight = mig.mirror_flows_inflight.saturating_sub(1);
            }
        }
    }
    // `op` is None for write-back-driven mirroring, which no longer
    // exists (the manager mirrors at guest-write time): nothing to
    // release then.
    if let Some(o) = op {
        eng.op_part_done(o);
    }
}

// ---------------- completion ----------------

pub(crate) fn maybe_complete(eng: &mut Engine, v: VmIdx) {
    let done = {
        let Some(mig) = eng.vm(v).migration.as_ref() else {
            return;
        };
        if matches!(mig.phase, MigPhase::Complete | MigPhase::Aborted) {
            return;
        }
        let memory_done = mig
            .postcopy_mem
            .as_ref()
            .map(|p| p.is_done())
            .unwrap_or(true);
        let storage_done = match mig.strategy {
            StrategyKind::Hybrid | StrategyKind::Postcopy => {
                mig.phase == MigPhase::PullPhase
                    && mig.pulls_inflight == 0
                    && mig
                        .hybrid_dst
                        .as_ref()
                        .map(|d| d.is_complete())
                        .unwrap_or(true)
            }
            _ => mig.control_at.is_some(),
        };
        memory_done && storage_done
    };
    if done {
        complete_migration(eng, v);
    }
}

fn complete_migration(eng: &mut Engine, v: VmIdx) {
    let now = eng.now();
    let consistent = {
        let vm = eng.vm(v);
        if vm.strategy == StrategyKind::SharedFs {
            true
        } else {
            vm.store.covers(&vm.disk)
        }
    };
    {
        let vm = eng.vm_mut(v);
        let total_down = vm.vm.total_downtime();
        let mig = vm.migration.as_mut().expect("migrating");
        mig.phase = MigPhase::Complete;
        mig.completed_at = Some(now);
        mig.consistent = Some(consistent);
        mig.downtime = total_down - mig.downtime_before;
        mig.source_store = None;
    }
    eng.note_milestone(v, Milestone::Completed);
    if let Some(job) = eng.job_for_vm(lsm_hypervisor::VmId(v)) {
        eng.set_job_status(job, MigrationStatus::Completed);
    }
    #[cfg(feature = "strict-verify")]
    {
        let vm = eng.vm(v);
        assert!(
            consistent,
            "migrated disk state diverged for VM {:?}: {:?}",
            vm.vm.id(),
            vm.store.divergence(&vm.disk)
        );
    }
    eng.update_compute(v);
}
