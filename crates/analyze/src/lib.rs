//! Static analysis over scenario specs — `lsm lint`.
//!
//! The engine's cost model already knows, in closed form, how long a
//! transfer must take (`lsm_core::planner::bounds`); the workload specs
//! already determine their steady-state I/O rates ([`WorkloadModel`]);
//! and the sharded runner's partitioner already proves which scenarios
//! decompose. This crate turns those facts into a *linter*: a pure
//! function from [`ScenarioSpec`] to a list of typed [`Diag`]nostics,
//! without building or running a simulation.
//!
//! Three families of rules:
//!
//! * **Feasibility proofs** (`L000`–`L003`, errors): the spec will not
//!   build, a migration provably cannot fit the horizon, a deadline is
//!   below the unconditional `bytes / bandwidth` lower bound, or a
//!   statically-chosen scheme cannot converge and nothing bounds it.
//! * **Dead configuration** (`L01x`, warnings): events after the
//!   horizon, restores with nothing to restore, cancellations that fire
//!   before their job exists, caps that can never bind.
//! * **Conflicts** (`L02x`, warnings) and the **shard-admission
//!   explainer** (`L03x`, info): settings that fight each other, and a
//!   per-reason account of why `lsm run --threads` would (or would
//!   not) shard this scenario.
//!
//! Severity contract: errors always fail a lint, warnings fail under
//! `--deny warnings`, info never fails. The analyses lean on the exact
//! same helpers the planner uses at run time, so a diagnostic here is a
//! statement about what the engine will actually do — the fuzz suite
//! cross-validates the error-level rules dynamically.

#![forbid(unsafe_code)]

pub mod diag;
mod model;

pub use diag::{fails, has_errors, render, Diag, DiagCode, Severity, Span};
pub use model::WorkloadModel;

use lsm_core::config::ClusterConfig;
use lsm_core::planner::bounds;
use lsm_core::policy::StrategyKind;
use lsm_core::FaultKind;
use lsm_experiments::scenario::ScenarioSpec;
use lsm_experiments::shard;
use std::collections::BTreeMap;

/// Analyze a scenario and return every diagnostic, errors first.
///
/// Structural problems (`L000`) short-circuit the deeper analyses:
/// once an index is out of range the cross-section rules cannot be
/// evaluated meaningfully.
pub fn lint(spec: &ScenarioSpec) -> Vec<Diag> {
    let mut diags = Vec::new();
    structural(spec, &mut diags);
    if diag::has_errors(&diags) {
        rank(&mut diags);
        return diags;
    }
    let cluster = spec.cluster_config();
    let models: Vec<WorkloadModel> = spec
        .vms
        .iter()
        .map(|v| WorkloadModel::of(&v.workload, &cluster))
        .collect();
    capacity(spec, &cluster, &models, &mut diags);
    convergence(spec, &cluster, &models, &mut diags);
    deadlines(spec, &cluster, &models, &mut diags);
    dead_config(spec, &cluster, &mut diags);
    conflicts(spec, &cluster, &mut diags);
    shard_admission(spec, &mut diags);
    rank(&mut diags);
    diags
}

/// Stable sort: errors, then warnings, then info, preserving the
/// per-severity emission order (document order).
fn rank(diags: &mut [Diag]) {
    diags.sort_by_key(|d| std::cmp::Reverse(d.severity));
}

fn bad_time(v: f64) -> bool {
    !(v.is_finite() && v >= 0.0)
}

fn mib(bytes: f64) -> f64 {
    bytes / (1024.0 * 1024.0)
}

fn mbps(bw: f64) -> f64 {
    bw / 1e6
}

/// `L000`: everything `build_scenario` would reject, collected instead
/// of first-error-wins.
fn structural(spec: &ScenarioSpec, out: &mut Vec<Diag>) {
    let push = |out: &mut Vec<Diag>, span, msg: String| {
        out.push(Diag::new(DiagCode::InvalidSpec, span, msg));
    };
    if bad_time(spec.horizon_secs) {
        push(
            out,
            Span::Scenario,
            format!(
                "horizon_secs must be finite and non-negative, got {}",
                spec.horizon_secs
            ),
        );
    }
    let cluster = spec.cluster_config();
    if let Err(e) = cluster.validate() {
        push(out, Span::Cluster, format!("invalid cluster config: {e}"));
    }
    if spec.grouped {
        let start0 = spec.vms.first().and_then(|v| v.start_secs).unwrap_or(0.0);
        for (i, v) in spec.vms.iter().enumerate() {
            if v.strategy.is_some() {
                push(
                    out,
                    Span::Vm(i),
                    "grouped scenarios use the scenario-wide strategy, but this vm overrides it"
                        .to_string(),
                );
            }
            if v.start_secs.unwrap_or(0.0) != start0 {
                push(
                    out,
                    Span::Vm(i),
                    "grouped scenarios start all ranks together, but this vm sets its own start_secs"
                        .to_string(),
                );
            }
        }
    }
    for (i, v) in spec.vms.iter().enumerate() {
        if v.node >= cluster.nodes {
            push(
                out,
                Span::Vm(i),
                format!("host node {} out of 0..{}", v.node, cluster.nodes),
            );
        }
        if let Err(e) = v.workload.validate() {
            push(out, Span::Vm(i), format!("invalid workload: {e}"));
        } else if v.workload.disk_footprint() > cluster.image_size {
            push(
                out,
                Span::Vm(i),
                format!(
                    "workload touches {:.0} MiB of virtual disk, beyond the {:.0} MiB image",
                    mib(v.workload.disk_footprint() as f64),
                    mib(cluster.image_size as f64)
                ),
            );
        }
        if bad_time(v.start_secs.unwrap_or(0.0)) {
            push(
                out,
                Span::Vm(i),
                format!(
                    "start_secs must be finite and non-negative, got {}",
                    v.start_secs.unwrap_or(0.0)
                ),
            );
        }
    }
    for (j, m) in spec.migrations.iter().enumerate() {
        if (m.vm as usize) >= spec.vms.len() {
            push(
                out,
                Span::Migration(j),
                format!(
                    "names vm {}, but only {} are declared",
                    m.vm,
                    spec.vms.len()
                ),
            );
        }
        if m.dest >= cluster.nodes {
            push(
                out,
                Span::Migration(j),
                format!("destination node {} out of 0..{}", m.dest, cluster.nodes),
            );
        }
        if bad_time(m.at_secs) {
            push(
                out,
                Span::Migration(j),
                format!("at_secs must be finite and non-negative, got {}", m.at_secs),
            );
        }
        if let Some(d) = m.deadline_secs {
            if bad_time(d) {
                push(
                    out,
                    Span::Migration(j),
                    format!("deadline_secs must be finite and non-negative, got {d}"),
                );
            }
        }
    }
    for (k, f) in spec.fault_plan().iter().enumerate() {
        if bad_time(f.at_secs) {
            push(
                out,
                Span::Fault(k),
                format!("at_secs must be finite and non-negative, got {}", f.at_secs),
            );
        }
        match f.kind {
            FaultKind::LinkDegrade { node, factor } => {
                if node >= cluster.nodes {
                    push(
                        out,
                        Span::Fault(k),
                        format!("node {} out of 0..{}", node, cluster.nodes),
                    );
                }
                if !(factor > 0.0 && factor <= 1.0) {
                    push(
                        out,
                        Span::Fault(k),
                        format!("degrade factor must be in (0, 1], got {factor}"),
                    );
                }
            }
            FaultKind::LinkRestore { node }
            | FaultKind::NodeCrash { node }
            | FaultKind::NodeRestore { node } => {
                if node >= cluster.nodes {
                    push(
                        out,
                        Span::Fault(k),
                        format!("node {} out of 0..{}", node, cluster.nodes),
                    );
                }
            }
            FaultKind::TransferStall { vm, secs } => {
                if (vm as usize) >= spec.vms.len() {
                    push(
                        out,
                        Span::Fault(k),
                        format!("names vm {}, but only {} are declared", vm, spec.vms.len()),
                    );
                }
                if bad_time(secs) {
                    push(
                        out,
                        Span::Fault(k),
                        format!("stall length must be finite and non-negative, got {secs}"),
                    );
                }
            }
        }
    }
    for (k, c) in spec.cancellation_plan().iter().enumerate() {
        if (c.job as usize) >= spec.migrations.len() {
            push(
                out,
                Span::Cancellation(k),
                format!(
                    "names migration {}, but only {} are declared",
                    c.job,
                    spec.migrations.len()
                ),
            );
        }
        if bad_time(c.at_secs) {
            push(
                out,
                Span::Cancellation(k),
                format!("at_secs must be finite and non-negative, got {}", c.at_secs),
            );
        }
    }
    for (k, r) in spec.request_plan().iter().enumerate() {
        if bad_time(r.at_secs) {
            push(
                out,
                Span::Request(k),
                format!("at_secs must be finite and non-negative, got {}", r.at_secs),
            );
        }
        if let lsm_core::planner::RequestIntent::Evacuate { node } = r.intent {
            if node >= cluster.nodes {
                push(
                    out,
                    Span::Request(k),
                    format!("evacuates node {} out of 0..{}", node, cluster.nodes),
                );
            }
        }
    }
}

/// `L001`: unconditional `bytes / bandwidth` lower bounds against the
/// horizon. Three nested proofs: each migration on its own wire, each
/// destination's NIC across the jobs landing there, and the whole plan
/// across the switch. Only *guest memory* bytes are counted — the one
/// component no scheme can avoid moving — so a firing is a proof, not
/// an estimate.
fn capacity(
    spec: &ScenarioSpec,
    cluster: &ClusterConfig,
    models: &[WorkloadModel],
    out: &mut Vec<Diag>,
) {
    let qos = spec.qos.as_ref();
    let eff = bounds::effective_migration_bandwidth(cluster, qos);
    let mem_ratio = qos.map(|q| q.compress_mem_ratio).unwrap_or(1.0);
    let mut per_dest: BTreeMap<u32, f64> = BTreeMap::new();
    let mut total = 0.0;
    for (j, m) in spec.migrations.iter().enumerate() {
        let model = &models[m.vm as usize];
        let mem_bytes = (model.mem.touched_bytes.min(cluster.vm_ram) as f64) * mem_ratio;
        total += mem_bytes;
        *per_dest.entry(m.dest).or_insert(0.0) += mem_bytes;
        let need = bounds::transfer_lower_bound(mem_bytes, eff);
        if m.at_secs + need > spec.horizon_secs {
            out.push(
                Diag::new(
                    DiagCode::CapacityInfeasible,
                    Span::Migration(j),
                    format!(
                        "cannot finish within the horizon: ≥ {:.0} MiB of guest memory over a \
                         {:.1} MB/s wire needs {:.1} s, but the request at t={:.1} s leaves \
                         {:.1} s of the {:.1} s horizon",
                        mib(mem_bytes),
                        mbps(eff),
                        need,
                        m.at_secs,
                        (spec.horizon_secs - m.at_secs).max(0.0),
                        spec.horizon_secs
                    ),
                )
                .with_suggestion(
                    "raise horizon_secs, request the migration earlier, or lift the bandwidth cap",
                ),
            );
        }
    }
    if total > 0.0 {
        let need = bounds::transfer_lower_bound(total, cluster.switch_bw);
        if need > spec.horizon_secs {
            out.push(
                Diag::new(
                    DiagCode::CapacityInfeasible,
                    Span::Cluster,
                    format!(
                        "the plan is switch-bound: all migrations together must move \
                         ≥ {:.0} MiB of guest memory through the {:.1} MB/s switch, \
                         needing {:.1} s against a {:.1} s horizon",
                        mib(total),
                        mbps(cluster.switch_bw),
                        need,
                        spec.horizon_secs
                    ),
                )
                .with_suggestion("raise horizon_secs, widen switch_bw, or thin the plan"),
            );
        }
    }
    for (dest, bytes) in per_dest {
        let need = bounds::transfer_lower_bound(bytes, cluster.nic_bw);
        if need > spec.horizon_secs {
            out.push(
                Diag::new(
                    DiagCode::CapacityInfeasible,
                    Span::Cluster,
                    format!(
                        "node {dest}'s NIC is the bottleneck: the migrations landing there must \
                         move ≥ {:.0} MiB of guest memory through its {:.1} MB/s downlink, \
                         needing {:.1} s against a {:.1} s horizon",
                        mib(bytes),
                        mbps(cluster.nic_bw),
                        need,
                        spec.horizon_secs
                    ),
                )
                .with_suggestion("spread destinations across more nodes or raise horizon_secs"),
            );
        }
    }
}

/// `L002`: the pre-copy convergence condition, evaluated statically.
/// Fires only for migrations whose scheme is *statically* Precopy or
/// Mirror (adaptive ones are resolved at run time from telemetry),
/// whose workload is still writing when the migration is requested,
/// and which have nothing armed to bound the job — `[resilience]`
/// auto-converge throttles the guest, a deadline turns livelock into a
/// bounded abort.
fn convergence(
    spec: &ScenarioSpec,
    cluster: &ClusterConfig,
    models: &[WorkloadModel],
    out: &mut Vec<Diag>,
) {
    let qos = spec.qos.as_ref();
    let eff = bounds::effective_migration_bandwidth(cluster, qos);
    let mem_ratio = qos.map(|q| q.compress_mem_ratio).unwrap_or(1.0);
    let storage_ratio = qos.map(|q| q.compress_storage_ratio).unwrap_or(1.0);
    for (j, m) in spec.migrations.iter().enumerate() {
        if m.adaptive == Some(true) {
            continue;
        }
        let strat = spec.vm_strategy(m.vm as usize);
        if !matches!(strat, StrategyKind::Precopy | StrategyKind::Mirror) {
            continue;
        }
        let model = &models[m.vm as usize];
        let start = spec.vms[m.vm as usize].start_secs.unwrap_or(0.0);
        if !model.writing_at(m.at_secs - start) {
            continue;
        }
        let (flux, what) = match strat {
            StrategyKind::Mirror => (
                model.write_rate * storage_ratio,
                "synchronous write mirroring",
            ),
            _ => (model.dirty_flux(cluster) * mem_ratio, "memory re-dirtying"),
        };
        if bounds::nonconvergent(flux, eff)
            && m.deadline_secs.is_none()
            && spec.resilience.is_none()
        {
            out.push(
                Diag::new(
                    DiagCode::NonConvergent,
                    Span::Migration(j),
                    format!(
                        "{:?} cannot converge: the {} workload's {} runs at {:.1} MB/s, \
                         ≥ 95 % of the {:.1} MB/s effective bandwidth, and nothing bounds the job",
                        strat,
                        model.label,
                        what,
                        mbps(flux),
                        mbps(eff)
                    ),
                )
                .with_suggestion(
                    "enable [resilience] auto-converge, set deadline_secs, or use Hybrid/Postcopy",
                ),
            );
        }
    }
}

/// `L003`: deadlines below a conservatively discounted transfer-time
/// lower bound. The storage a workload has already modified by request
/// time exists only on the source and must cross the wire; half of
/// `modified / bandwidth` (the 2× discount absorbs the rate model's
/// slack) already overrunning the deadline proves the abort.
fn deadlines(
    spec: &ScenarioSpec,
    cluster: &ClusterConfig,
    models: &[WorkloadModel],
    out: &mut Vec<Diag>,
) {
    let qos = spec.qos.as_ref();
    let eff = bounds::effective_migration_bandwidth(cluster, qos);
    let storage_ratio = qos.map(|q| q.compress_storage_ratio).unwrap_or(1.0);
    for (j, m) in spec.migrations.iter().enumerate() {
        let Some(deadline) = m.deadline_secs else {
            continue;
        };
        let model = &models[m.vm as usize];
        let start = spec.vms[m.vm as usize].start_secs.unwrap_or(0.0);
        let modified = model.distinct_written_by(m.at_secs - start) * storage_ratio;
        let lb = 0.5 * bounds::transfer_lower_bound(modified, eff);
        if lb > deadline {
            out.push(
                Diag::new(
                    DiagCode::DeadlineImpossible,
                    Span::Migration(j),
                    format!(
                        "guaranteed DeadlineExceeded: ≥ {:.0} MiB of storage modified by \
                         t={:.1} s must cross the {:.1} MB/s wire, a conservative lower bound \
                         of {:.1} s against a {:.1} s deadline",
                        mib(modified),
                        m.at_secs,
                        mbps(eff),
                        lb,
                        deadline
                    ),
                )
                .with_suggestion(format!(
                    "raise deadline_secs above ~{:.0} s (the undiscounted bound) or migrate earlier",
                    2.0 * lb
                )),
            );
        }
    }
}

/// `L010`–`L014`: configuration that provably does nothing.
fn dead_config(spec: &ScenarioSpec, cluster: &ClusterConfig, out: &mut Vec<Diag>) {
    let planner_active = spec.request_plan().iter().next().is_some() || spec.autonomic.is_some();
    // L011: anything scheduled after the horizon never fires.
    let late = |at: f64| at > spec.horizon_secs;
    for (j, m) in spec.migrations.iter().enumerate() {
        if late(m.at_secs) {
            out.push(Diag::new(
                DiagCode::DeadEvent,
                Span::Migration(j),
                format!(
                    "requested at t={} s, after the {} s horizon — it never runs",
                    m.at_secs, spec.horizon_secs
                ),
            ));
        }
    }
    for (k, f) in spec.fault_plan().iter().enumerate() {
        if late(f.at_secs) {
            out.push(Diag::new(
                DiagCode::DeadEvent,
                Span::Fault(k),
                format!(
                    "fires at t={} s, after the {} s horizon — it never happens",
                    f.at_secs, spec.horizon_secs
                ),
            ));
        }
    }
    for (k, c) in spec.cancellation_plan().iter().enumerate() {
        if late(c.at_secs) {
            out.push(Diag::new(
                DiagCode::DeadEvent,
                Span::Cancellation(k),
                format!(
                    "fires at t={} s, after the {} s horizon — it never happens",
                    c.at_secs, spec.horizon_secs
                ),
            ));
        }
    }
    for (k, r) in spec.request_plan().iter().enumerate() {
        if late(r.at_secs) {
            out.push(Diag::new(
                DiagCode::DeadEvent,
                Span::Request(k),
                format!(
                    "fires at t={} s, after the {} s horizon — it never happens",
                    r.at_secs, spec.horizon_secs
                ),
            ));
        }
    }
    // L010: faults with provably no effect. "Used" nodes are hosts and
    // declared destinations; that set is only sound as a traffic bound
    // when no planner can add placements and no workload reads (reads
    // fetch repository replicas from arbitrary nodes).
    let closed_world = !planner_active
        && spec
            .vms
            .iter()
            .all(|v| v.workload.chunk_aligned_write_only(cluster.chunk_size));
    let used_node = |n: u32| {
        spec.vms.iter().any(|v| v.node == n) || spec.migrations.iter().any(|m| m.dest == n)
    };
    let faults = spec.fault_plan();
    for (k, f) in faults.iter().enumerate() {
        match f.kind {
            FaultKind::NodeRestore { node } => {
                let preceded = faults.iter().any(|g| {
                    matches!(g.kind, FaultKind::NodeCrash { node: n } if n == node)
                        && g.at_secs <= f.at_secs
                });
                if !preceded {
                    out.push(
                        Diag::new(
                            DiagCode::DeadFault,
                            Span::Fault(k),
                            format!("restores node {node}, but no NodeCrash precedes it — a no-op"),
                        )
                        .with_suggestion("crash the node first, or drop the restore"),
                    );
                }
            }
            FaultKind::LinkRestore { node } => {
                let preceded = faults.iter().any(|g| {
                    matches!(g.kind, FaultKind::LinkDegrade { node: n, .. } if n == node)
                        && g.at_secs <= f.at_secs
                });
                if !preceded {
                    out.push(
                        Diag::new(
                            DiagCode::DeadFault,
                            Span::Fault(k),
                            format!(
                                "restores node {node}'s link, but no LinkDegrade precedes it — a no-op"
                            ),
                        )
                        .with_suggestion("degrade the link first, or drop the restore"),
                    );
                }
            }
            FaultKind::TransferStall { vm, .. } => {
                let migrates =
                    planner_active || spec.migrations.iter().any(|m| m.vm as usize == vm as usize);
                if !migrates {
                    out.push(
                        Diag::new(
                            DiagCode::DeadFault,
                            Span::Fault(k),
                            format!(
                                "stalls vm {vm}, but no migration (and no planner) ever moves it"
                            ),
                        )
                        .with_suggestion("target a migrating VM, or drop the stall"),
                    );
                }
            }
            FaultKind::NodeCrash { node } | FaultKind::LinkDegrade { node, .. } => {
                if closed_world && !used_node(node) {
                    out.push(
                        Diag::new(
                            DiagCode::DeadFault,
                            Span::Fault(k),
                            format!(
                                "hits node {node}, which hosts nothing and is no migration's \
                                 destination; with write-only workloads and no planner, no \
                                 traffic can touch it"
                            ),
                        )
                        .with_suggestion("target a host or destination node, or drop the fault"),
                    );
                }
            }
        }
    }
    // L012: a cancellation firing before its migration is requested
    // finds no job to unwind — the migration then runs to completion,
    // which is almost never what a written-down cancellation intends.
    for (k, c) in spec.cancellation_plan().iter().enumerate() {
        let m = &spec.migrations[c.job as usize];
        if c.at_secs < m.at_secs {
            out.push(
                Diag::new(
                    DiagCode::DeadCancellation,
                    Span::Cancellation(k),
                    format!(
                        "fires at t={} s, before migration {} is requested at t={} s — \
                         there is no job to cancel yet, so the migration runs anyway",
                        c.at_secs, c.job, m.at_secs
                    ),
                )
                .with_suggestion("move the cancellation after the migration's at_secs"),
            );
        }
    }
    // L013: a QoS cap at or above the wire never shapes anything.
    if let Some(cap) = spec.qos.as_ref().and_then(|q| q.cap_bytes()) {
        let wire = cluster.nic_bw.min(cluster.migration_speed_cap());
        if cap >= wire {
            out.push(
                Diag::new(
                    DiagCode::DeadQosCap,
                    Span::Qos,
                    format!(
                        "bandwidth cap of {:.1} MB/s is at or above the {:.1} MB/s wire — \
                         shaping never binds",
                        mbps(cap),
                        mbps(wire)
                    ),
                )
                .with_suggestion("lower bandwidth_cap_mb below the NIC, or drop it"),
            );
        }
    }
    // L014: an admission cap no queue can ever reach.
    if let Some(cap) = spec.orchestrator.as_ref().and_then(|o| o.max_concurrent) {
        if !planner_active && (cap as usize) >= spec.migrations.len() {
            out.push(
                Diag::new(
                    DiagCode::DeadAdmissionCap,
                    Span::Orchestrator,
                    format!(
                        "admission cap of {cap} can never bind: only {} migrations are \
                         declared and no requests or autonomic planner can add more",
                        spec.migrations.len()
                    ),
                )
                .with_suggestion("lower max_concurrent, or drop it"),
            );
        }
    }
}

/// `L020`–`L022`: settings that fight each other.
fn conflicts(spec: &ScenarioSpec, cluster: &ClusterConfig, out: &mut Vec<Diag>) {
    if let Some(res) = &spec.resilience {
        // L020: a downtime limit bounds the stop-and-copy round; under
        // post-copy memory control transfer there is none.
        if res.downtime_limit_ms.is_some() && cluster.postcopy_memory {
            out.push(
                Diag::new(
                    DiagCode::ConflictDowntimePostcopy,
                    Span::Resilience,
                    "downtime_limit_ms has no effect: postcopy_memory transfers control \
                     immediately, so there is no stop-and-copy round to bound"
                        .to_string(),
                )
                .with_suggestion("drop downtime_limit_ms or disable postcopy_memory"),
            );
        }
        // L021: a retry policy none of whose enabled causes can occur.
        if res.retry.max_attempts > 1 && spec.autonomic.is_none() {
            let on = &res.retry.retry_on;
            let crash_possible = on.dest_crash
                && spec
                    .fault_plan()
                    .iter()
                    .any(|f| matches!(f.kind, FaultKind::NodeCrash { .. }));
            let stall_possible = on.stall
                && spec
                    .fault_plan()
                    .iter()
                    .any(|f| matches!(f.kind, FaultKind::TransferStall { .. }));
            let deadline_possible =
                on.deadline && spec.migrations.iter().any(|m| m.deadline_secs.is_some());
            if !(crash_possible || stall_possible || deadline_possible) {
                out.push(
                    Diag::new(
                        DiagCode::ConflictRetryUnreachable,
                        Span::Resilience,
                        format!(
                            "retry policy (max_attempts = {}) can never trigger: no crash \
                             faults, no transfer stalls, and no deadlines are declared for \
                             its enabled causes",
                            res.retry.max_attempts
                        ),
                    )
                    .with_suggestion(
                        "add the faults/deadlines the policy retries on, or drop [resilience.retry]",
                    ),
                );
            }
        }
    }
    // L022: a per-VM cooldown the horizon can never outlast.
    if let Some(auto) = &spec.autonomic {
        if auto.cooldown_secs >= spec.horizon_secs {
            out.push(
                Diag::new(
                    DiagCode::ConflictCooldownHorizon,
                    Span::Autonomic,
                    format!(
                        "cooldown_secs = {} meets or exceeds the {} s horizon — the \
                         rebalancer can move each VM at most once",
                        auto.cooldown_secs, spec.horizon_secs
                    ),
                )
                .with_suggestion("shorten cooldown_secs or lengthen the horizon"),
            );
        }
    }
}

/// `L030`/`L031`: the shard-admission explainer. Runs the *actual*
/// partitioner the threaded runner uses, so the explanation can never
/// drift from the implementation.
fn shard_admission(spec: &ScenarioSpec, out: &mut Vec<Diag>) {
    match shard::partition(spec) {
        Ok(subs) => out.push(Diag::new(
            DiagCode::ShardOk,
            Span::Scenario,
            format!(
                "shardable: partitions into {} independent sub-scenarios; \
                 `lsm run --threads N` will run them in parallel",
                subs.len()
            ),
        )),
        Err(rejections) => {
            // One diagnostic per *kind* of reason; a reason repeated
            // across many migrations/VMs (e.g. 2048 adaptive
            // migrations) collapses to its first occurrence + count.
            let mut groups: Vec<(std::mem::Discriminant<shard::ShardRejection>, String, usize)> =
                Vec::new();
            for r in &rejections {
                let d = std::mem::discriminant(r);
                match groups.iter_mut().find(|(k, _, _)| *k == d) {
                    Some((_, _, n)) => *n += 1,
                    None => groups.push((d, r.to_string(), 1)),
                }
            }
            for (_, first, n) in groups {
                let more = if n > 1 {
                    format!(" ({} more like this)", n - 1)
                } else {
                    String::new()
                };
                out.push(Diag::new(
                    DiagCode::ShardInadmissible,
                    Span::Scenario,
                    format!(
                        "not shardable: {first}{more} — `lsm run --threads N` falls back to monolithic"
                    ),
                ));
            }
        }
    }
}
