//! # lsm-experiments — regenerating the paper's evaluation
//!
//! One module per figure of Nicolae & Cappello (HPDC'12), §5:
//!
//! * [`fig3`] — live migration of one I/O-intensive VM (IOR, AsyncWR):
//!   migration time, network traffic, normalized throughput.
//! * [`fig4`] — 30 AsyncWR sources, 1–30 simultaneous migrations:
//!   average migration time, total traffic, compute degradation.
//! * [`fig5`] — CM1 on 64 ranks, 1–7 successive migrations: cumulated
//!   migration time, migration-attributable traffic, runtime increase.
//! * [`ablations`] — design-choice sweeps the paper motivates but does
//!   not plot: the push `Threshold`, prefetch prioritization, and the
//!   transfer pipeline window.
//! * [`stress`] — paper-scale performance scenarios (`scale64`: 64
//!   nodes, 128 VMs, 128 staggered migrations) driven by `lsm bench`.
//! * [`faults`] — migrations under degraded and failing conditions
//!   (destination crashes, link-degradation windows, transfer stalls,
//!   deadlines), with the recovery contract pinned by tests and the
//!   `lsm-check` invariant observer.
//! * [`orchestration`] — cluster-orchestration scenarios: node
//!   evacuation under an admission cap, and a 64-VM fleet whose
//!   migrations pick their transfer scheme adaptively from live write
//!   intensity (the paper's §4 decision at fleet scale) — under the
//!   threshold rule (`adaptive64`) and the predictive cost model
//!   (`cost64`).
//! * [`autonomic`] — closed-loop rebalancer scenarios with **zero**
//!   scripted migrations: a hotspot drill (overloaded node relieved by
//!   monitor-originated moves, hot-phase writers deferred until the
//!   deadline) and a slow drain (underloaded node consolidated empty).
//! * [`judge`] — the planner judge harness: the same fleet under
//!   `adaptive` vs `cost`, scored on completion makespan and bytes
//!   moved (`lsm judge`).
//! * [`resilience`] — the resilience-layer scenarios: a chaos storm
//!   (six migrations under crashes, degradations, stalls, a restore
//!   and a cancellation, all terminal under a retry policy, with
//!   resumed transfers) and an auto-converge drill (a hot guest saved
//!   from its deadline by stepped throttling).
//!
//! Every experiment offers two scales: [`Scale::Paper`] reproduces the
//! paper's parameters; [`Scale::Quick`] is a minutes→seconds reduction
//! with the same qualitative behaviour, used by integration tests.
//!
//! [`scenario`] has the declarative, TOML/JSON-serializable run
//! descriptions ([`scenario::ScenarioSpec`]) and the checked runner
//! every experiment goes through, [`table`] the plain text/CSV
//! renderers, and [`sweep`] a scoped-thread parallel run launcher.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ablations;
pub mod autonomic;
pub mod faults;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod judge;
pub mod orchestration;
pub mod resilience;
pub mod scenario;
pub mod shard;
pub mod stress;
pub mod sweep;
pub mod table;

/// Experiment scale: the paper's parameters or a fast test reduction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// Full parameters from §5 of the paper.
    Paper,
    /// Shrunk workloads/cluster for CI and unit tests.
    Quick,
}
