//! Simulated time: nanosecond-resolution instants and durations.
//!
//! All simulated time is kept in integer nanoseconds. Floating point enters
//! only at the edges (rate computations), and conversions round half-up so
//! that `t + transfer_time(bytes, bw)` is stable across platforms.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant in simulated time (nanoseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

/// A span of simulated time (nanoseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// A sentinel "never happens" instant, ordered after every real instant.
    pub const FAR_FUTURE: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Construct from fractional seconds (rounds to the nearest nanosecond).
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0, "negative simulation time");
        SimTime((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds since simulation start.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Elapsed duration since `earlier`. Saturates at zero if `earlier`
    /// is actually later (callers treat clock skew as "no time passed").
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating add that treats [`SimTime::FAR_FUTURE`] as absorbing.
    #[inline]
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds (rounds to the nearest nanosecond).
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0, "negative duration");
        debug_assert!(s.is_finite(), "non-finite duration");
        SimDuration((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds (for rate computations and reporting).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True if this duration is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Scale a duration by a non-negative factor.
    #[inline]
    pub fn mul_f64(self, k: f64) -> SimDuration {
        debug_assert!(k >= 0.0);
        SimDuration((self.0 as f64 * k).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "time went backwards");
        SimDuration(self.0 - rhs.0)
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == SimTime::FAR_FUTURE {
            write!(f, "t=∞")
        } else {
            write!(f, "t={:.6}s", self.as_secs_f64())
        }
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_secs(3).as_nanos(), 3_000_000_000);
        assert_eq!(SimDuration::from_millis(5).as_nanos(), 5_000_000);
        assert_eq!(SimDuration::from_micros(7).as_nanos(), 7_000);
        let t = SimTime::from_secs_f64(1.25);
        assert_eq!(t.as_nanos(), 1_250_000_000);
        assert!((t.as_secs_f64() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t0 = SimTime::from_secs(1);
        let t1 = t0 + SimDuration::from_millis(500);
        assert_eq!((t1 - t0).as_nanos(), 500_000_000);
        assert_eq!(t1.since(t0), SimDuration::from_millis(500));
        // since() saturates rather than underflowing.
        assert_eq!(t0.since(t1), SimDuration::ZERO);
    }

    #[test]
    fn ordering_and_sentinel() {
        assert!(SimTime::ZERO < SimTime::from_nanos(1));
        assert!(SimTime::from_secs(1_000_000) < SimTime::FAR_FUTURE);
        assert_eq!(
            SimTime::FAR_FUTURE.saturating_add(SimDuration::from_secs(1)),
            SimTime::FAR_FUTURE
        );
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_secs(2);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_secs(1));
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }
}
