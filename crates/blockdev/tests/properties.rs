//! Property tests for the block-device substrate.

use lsm_blockdev::{
    byte_range_to_chunks, CacheConfig, ChunkId, ChunkSet, ChunkStore, DirtyTracker, PageCache,
    VirtualDisk, WriteClass, WriteCounter,
};
use proptest::prelude::*;
use std::collections::BTreeSet;

const N: u32 = 512;

proptest! {
    /// ChunkSet behaves exactly like a BTreeSet<u32> reference model.
    #[test]
    fn chunkset_matches_reference(ops in prop::collection::vec((0u32..N, prop::bool::ANY), 0..300)) {
        let mut cs = ChunkSet::new(N);
        let mut reference = BTreeSet::new();
        for (c, insert) in ops {
            if insert {
                prop_assert_eq!(cs.insert(ChunkId(c)), reference.insert(c));
            } else {
                prop_assert_eq!(cs.remove(ChunkId(c)), reference.remove(&c));
            }
            prop_assert_eq!(cs.count() as usize, reference.len());
        }
        let got: Vec<u32> = cs.iter().map(|c| c.0).collect();
        let want: Vec<u32> = reference.iter().copied().collect();
        prop_assert_eq!(got, want);
        // pop_first drains in sorted order.
        let mut drained = Vec::new();
        while let Some(c) = cs.pop_first() {
            drained.push(c.0);
        }
        let want: Vec<u32> = reference.iter().copied().collect();
        prop_assert_eq!(drained, want);
    }

    /// Set algebra agrees with the reference model.
    #[test]
    fn chunkset_algebra_matches_reference(
        a in prop::collection::btree_set(0u32..N, 0..100),
        b in prop::collection::btree_set(0u32..N, 0..100),
    ) {
        let mut ca = ChunkSet::from_iter(N, a.iter().map(|&i| ChunkId(i)));
        let cb = ChunkSet::from_iter(N, b.iter().map(|&i| ChunkId(i)));
        ca.union_with(&cb);
        let union: BTreeSet<u32> = a.union(&b).copied().collect();
        prop_assert_eq!(ca.iter().map(|c| c.0).collect::<BTreeSet<_>>(), union.clone());
        ca.subtract(&cb);
        let diff: BTreeSet<u32> = union.difference(&b).copied().collect();
        prop_assert_eq!(ca.iter().map(|c| c.0).collect::<BTreeSet<_>>(), diff);
    }

    /// Every byte of an I/O lands in exactly the chunk range reported.
    #[test]
    fn byte_range_covers_exactly(offset in 0u64..1_000_000, len in 1u64..500_000, ck_pow in 12u32..20) {
        let ck = 1u64 << ck_pow;
        let (first, last, first_partial, last_partial) = byte_range_to_chunks(offset, len, ck);
        prop_assert!(first.0 <= last.0);
        prop_assert_eq!(first.0 as u64, offset / ck);
        prop_assert_eq!(last.0 as u64, (offset + len - 1) / ck);
        prop_assert_eq!(first_partial, offset % ck != 0);
        prop_assert_eq!(last_partial, (offset + len) % ck != 0);
    }

    /// A ChunkStore that applies every write of a disk (in any interleaving
    /// with stale re-deliveries) ends up covering the disk.
    #[test]
    fn store_converges_despite_stale_redeliveries(
        writes in prop::collection::vec(0u32..64, 1..200),
        redeliver_every in 1usize..5,
    ) {
        let mut disk = VirtualDisk::new(64, 4096);
        let mut store = ChunkStore::new(64);
        let mut log: Vec<(ChunkId, u64)> = Vec::new();
        for (i, c) in writes.iter().enumerate() {
            let c = ChunkId(*c);
            let v = disk.write(c);
            log.push((c, v));
            store.apply(c, v);
            // Periodically re-deliver an old version: must never regress.
            if i % redeliver_every == 0 {
                let (oc, ov) = log[i / 2];
                store.apply(oc, ov);
            }
        }
        prop_assert!(store.covers(&disk), "divergence: {:?}", store.divergence(&disk));
    }

    /// WriteCounter: a chunk becomes unpushable exactly at Threshold.
    #[test]
    fn write_counter_threshold(threshold in 1u32..10, hits in 0u32..20) {
        let mut wc = WriteCounter::new(4, threshold);
        for _ in 0..hits {
            wc.record_write(ChunkId(0));
        }
        prop_assert_eq!(wc.pushable(ChunkId(0)), hits < threshold);
        prop_assert_eq!(wc.count(ChunkId(0)), hits);
    }

    /// Page cache: dirty bytes never exceed the configured limit, and
    /// resident bytes only exceed capacity when pinned dirty chunks force it.
    #[test]
    fn cache_limits_respected(ops in prop::collection::vec((0u32..128, 0u8..3), 1..400)) {
        let ck = 4096u64;
        let cfg = CacheConfig {
            chunk_size: ck,
            capacity_bytes: 32 * ck,
            dirty_limit_bytes: 8 * ck,
            background_limit_bytes: 4 * ck,
        };
        let mut pc = PageCache::new(128, cfg);
        for (c, kind) in ops {
            let c = ChunkId(c);
            match kind {
                0 => {
                    let class = pc.classify_write(c);
                    if pc.dirty_bytes() > cfg.dirty_limit_bytes {
                        prop_assert_eq!(class, WriteClass::Throttled);
                    }
                }
                1 => pc.fill(c),
                _ => {
                    if let Some(wb) = pc.start_writeback() {
                        pc.writeback_done(wb);
                    }
                }
            }
            prop_assert!(pc.dirty_bytes() <= cfg.dirty_limit_bytes,
                "dirty {} over limit", pc.dirty_bytes());
            let dirty_chunks = pc.dirty_bytes() / ck;
            let slack = dirty_chunks * ck;
            prop_assert!(pc.resident_bytes() <= cfg.capacity_bytes + slack + ck,
                "resident {} over capacity", pc.resident_bytes());
        }
        // Full drain always terminates and zeroes dirty bytes.
        while let Some(wb) = pc.start_writeback() {
            pc.writeback_done(wb);
        }
        prop_assert_eq!(pc.dirty_bytes(), 0);
    }

    /// DirtyTracker: every written chunk is eventually sent, and the number
    /// of sends of a chunk never exceeds 1 + times it was re-dirtied after
    /// being sent.
    #[test]
    fn dirty_tracker_send_counts(
        initial in prop::collection::btree_set(0u32..64, 1..32),
        interleave in prop::collection::vec((0u32..64, prop::bool::ANY), 0..200),
    ) {
        let bulk = ChunkSet::from_iter(64, initial.iter().map(|&i| ChunkId(i)));
        let mut t = DirtyTracker::start(bulk);
        let mut sent: Vec<u32> = Vec::new();
        let mut written: BTreeSet<u32> = initial.clone();
        for (c, send_next) in interleave {
            if send_next {
                if let Some(s) = t.next_chunk() {
                    sent.push(s.0);
                }
            } else {
                t.record_write(ChunkId(c));
                written.insert(c);
            }
        }
        for s in t.drain_all() {
            sent.push(s.0);
        }
        prop_assert!(t.converged());
        // Every written chunk was sent at least once.
        for w in &written {
            prop_assert!(sent.contains(w), "chunk {w} written but never sent");
        }
    }
}
