//! Byte-size and bandwidth units used throughout the workspace.
//!
//! Sizes are `u64` bytes; bandwidths are `f64` bytes/second (the fluid flow
//! models divide by them constantly). The constants mirror the testbed
//! numbers reported in §5.1 of the paper.

use crate::time::SimDuration;

/// One kibibyte.
pub const KIB: u64 = 1024;
/// One mebibyte.
pub const MIB: u64 = 1024 * KIB;
/// One gibibyte.
pub const GIB: u64 = 1024 * MIB;

/// Bandwidth in bytes per second.
pub type Bandwidth = f64;

/// Megabytes-per-second helper (paper quotes MB/s figures).
#[inline]
pub fn mb_per_s(mb: f64) -> Bandwidth {
    mb * MIB as f64
}

/// Gigabytes-per-second helper.
#[inline]
pub fn gb_per_s(gb: f64) -> Bandwidth {
    gb * GIB as f64
}

/// Time to move `bytes` at `bw` bytes/second.
///
/// Panics (debug) on non-positive bandwidth; a zero-byte transfer takes
/// zero time regardless of bandwidth.
#[inline]
pub fn transfer_time(bytes: u64, bw: Bandwidth) -> SimDuration {
    if bytes == 0 {
        return SimDuration::ZERO;
    }
    debug_assert!(bw > 0.0, "transfer over zero-bandwidth resource");
    SimDuration::from_secs_f64(bytes as f64 / bw)
}

/// Render a byte count with a human-readable suffix (reports/tables).
pub fn fmt_bytes(bytes: u64) -> String {
    let b = bytes as f64;
    if bytes >= 10 * GIB {
        format!("{:.1} GiB", b / GIB as f64)
    } else if bytes >= 10 * MIB {
        format!("{:.1} MiB", b / MIB as f64)
    } else if bytes >= 10 * KIB {
        format!("{:.1} KiB", b / KIB as f64)
    } else {
        format!("{bytes} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants() {
        assert_eq!(KIB, 1 << 10);
        assert_eq!(MIB, 1 << 20);
        assert_eq!(GIB, 1 << 30);
    }

    #[test]
    fn transfer_time_basic() {
        let d = transfer_time(MIB, mb_per_s(1.0));
        assert!((d.as_secs_f64() - 1.0).abs() < 1e-9);
        assert_eq!(transfer_time(0, mb_per_s(1.0)), SimDuration::ZERO);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(20 * KIB), "20.0 KiB");
        assert_eq!(fmt_bytes(64 * MIB), "64.0 MiB");
        assert_eq!(fmt_bytes(16 * GIB), "16.0 GiB");
    }
}
