//! The scenario fuzzer: random cluster/workload/migration/fault plans
//! — including node restores, retry policies and operator
//! cancellations — each run under **both** network solvers with an
//! invariant checker attached. Every case must produce bit-identical serialized
//! `RunReport`s across solvers and zero invariant violations — the
//! engine's recovery paths hold the conservation laws no matter what
//! the plan throws at them.
//!
//! Deterministic: the compat proptest derives its seed from the test
//! name (override with `PROPTEST_SEED`), and case counts are bounded
//! (`fuzz-smoke` in CI runs exactly this file).

use lsm_check::{CheckConfig, InvariantObserver};
use lsm_core::config::ClusterConfig;
use lsm_core::policy::StrategyKind;
use lsm_core::{FaultKind, QosConfig, ResilienceConfig, RetryPolicy};
use lsm_experiments::scenario::{
    run_scenario_observed_with_solver, CancelSpec, FaultSpec, MigrationSpec, ScenarioSpec, VmSpec,
};
use lsm_netsim::SolverMode;
use lsm_simcore::units::MIB;
use lsm_workloads::WorkloadSpec;
use proptest::prelude::*;

const NODES: u32 = 4;

fn workload_strategy() -> impl Strategy<Value = WorkloadSpec> {
    prop_oneof![
        (1u64..24, 1u64..3, 0.01f64..0.08).prop_map(|(mb, block, think)| {
            WorkloadSpec::SeqWrite {
                offset: 0,
                total: mb << 20,
                block: block << 20,
                think_secs: think,
            }
        }),
        (8u64..64, 50u64..600, 0.3f64..0.9, 0u64..999).prop_map(|(blocks, count, theta, seed)| {
            WorkloadSpec::HotspotWrite {
                offset: 0,
                region_blocks: blocks,
                block: 256 * 1024,
                count,
                theta,
                think_secs: 0.01,
                seed,
            }
        }),
        (1u32..4, 0.2f64..1.5).prop_map(|(bursts, secs)| WorkloadSpec::Idle {
            bursts,
            burst_secs: secs,
        }),
    ]
}

fn strategy_strategy() -> impl Strategy<Value = StrategyKind> {
    prop_oneof![
        3 => Just(StrategyKind::Hybrid),
        1 => Just(StrategyKind::Postcopy),
        1 => Just(StrategyKind::Precopy),
        1 => Just(StrategyKind::Mirror),
    ]
}

fn fault_strategy() -> impl Strategy<Value = FaultSpec> {
    (0.2f64..20.0, 0u8..5, 0u32..NODES, 0.05f64..1.0).prop_map(|(at, kind, node, x)| FaultSpec {
        at_secs: at,
        kind: match kind {
            0 => FaultKind::LinkDegrade { node, factor: x },
            1 => FaultKind::LinkRestore { node },
            2 => FaultKind::NodeCrash { node },
            3 => FaultKind::NodeRestore { node },
            _ => FaultKind::TransferStall {
                vm: node % 3, // may exceed the VM count: rejected specs are skipped
                secs: x * 4.0,
            },
        },
    })
}

/// A small-but-live retry policy: enough attempts and short enough
/// backoffs that retries actually fire inside the fuzzed horizons.
fn resilience_strategy() -> impl Strategy<Value = ResilienceConfig> {
    (
        1u32..4,
        0.2f64..3.0,
        0.0f64..6.0,
        prop::bool::ANY,
        prop::bool::ANY,
    )
        .prop_map(|(max_attempts, backoff, extra, stall, deadline)| {
            let mut cfg = ResilienceConfig {
                retry: RetryPolicy {
                    max_attempts,
                    backoff_secs: backoff,
                    backoff_cap_secs: backoff + extra,
                    ..RetryPolicy::default()
                },
                ..ResilienceConfig::default()
            };
            cfg.retry.retry_on.stall = stall;
            cfg.retry.retry_on.deadline = deadline;
            cfg
        })
}

/// Random QoS shaping: caps tight enough to bite on the small test
/// cluster, multifd splits, and compression with a CPU cost — the
/// shaped transfer paths must hold the same laws as the bare ones.
fn qos_strategy() -> impl Strategy<Value = QosConfig> {
    (
        prop::option::of(5.0f64..80.0),
        1u32..=8,
        0.3f64..1.0,
        0.3f64..1.0,
        0.0f64..0.5,
    )
        .prop_map(
            |(cap, streams, mem_ratio, storage_ratio, cpu_frac)| QosConfig {
                bandwidth_cap_mb: cap,
                streams,
                compress_mem_ratio: mem_ratio,
                compress_storage_ratio: storage_ratio,
                compress_cpu_frac: cpu_frac,
            },
        )
}

fn cancel_strategy() -> impl Strategy<Value = CancelSpec> {
    (0.3f64..40.0, 0u32..3).prop_map(|(at, job)| CancelSpec {
        at_secs: at,
        job, // may exceed the job count: rejected specs are skipped
    })
}

fn scenario_strategy() -> impl Strategy<Value = ScenarioSpec> {
    (
        strategy_strategy(),
        prop::collection::vec((0u32..NODES, workload_strategy()), 1..4),
        prop::collection::vec(
            (0u32..NODES, 0.2f64..8.0, prop::option::of(0.3f64..30.0)),
            0..3,
        ),
        prop::collection::vec(fault_strategy(), 0..5),
        (
            prop::option::of(resilience_strategy()),
            prop::option::of(qos_strategy()),
        ),
        prop::collection::vec(cancel_strategy(), 0..3),
        30.0f64..90.0,
    )
        .prop_map(
            |(strategy, vms, migs, faults, (resilience, qos), cancels, horizon)| {
                let nvms = vms.len() as u32;
                ScenarioSpec {
                    name: None,
                    cluster: Some(ClusterConfig::small_test()),
                    orchestrator: None,
                    autonomic: None,
                    resilience,
                    qos,
                    strategy,
                    grouped: false,
                    vms: vms
                        .into_iter()
                        .map(|(node, workload)| VmSpec::new(node, workload))
                        .collect(),
                    migrations: migs
                        .into_iter()
                        .enumerate()
                        .map(|(i, (dest, at, deadline))| MigrationSpec {
                            vm: i as u32 % nvms,
                            dest,
                            at_secs: at,
                            deadline_secs: deadline,
                            adaptive: None,
                        })
                        .collect(),
                    requests: None,
                    faults: if faults.is_empty() {
                        None
                    } else {
                        Some(faults)
                    },
                    cancellations: if cancels.is_empty() {
                        None
                    } else {
                        Some(cancels)
                    },
                    horizon_secs: horizon,
                }
            },
        )
}

fn checker() -> InvariantObserver {
    InvariantObserver::with_config(CheckConfig {
        deep_scan_interval: 512,
        ..CheckConfig::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline fuzz property: any valid random cluster/fault plan
    /// yields bit-identical reports under both solver modes and breaks
    /// no conservation law in either.
    #[test]
    fn random_fault_plans_are_solver_identical_and_invariant_clean(
        spec in scenario_strategy()
    ) {
        // Some generated plans are (deliberately) invalid — e.g. a
        // migration whose destination equals the VM's node, or a stall
        // naming a VM index that does not exist. Those must reject
        // cleanly; valid ones must run clean.
        let mut reports = Vec::new();
        for solver in [SolverMode::Incremental, SolverMode::Reference] {
            let mut obs = checker();
            match run_scenario_observed_with_solver(&spec, solver, &mut obs) {
                Err(_) => {
                    prop_assume!(false); // invalid plan: rejected, skip
                }
                Ok(r) => {
                    if !obs.is_clean() {
                        return Err(TestCaseError::fail(format!(
                            "invariant violations under {solver:?}:\n{}",
                            obs.violations()
                                .iter()
                                .map(|v| format!("  {v}"))
                                .collect::<Vec<_>>()
                                .join("\n")
                        )));
                    }
                    reports.push(serde_json::to_string_pretty(&r).expect("serializes"));
                }
            }
        }
        prop_assert_eq!(reports.len(), 2);
        if reports[0] != reports[1] {
            let diff = reports[0]
                .lines()
                .zip(reports[1].lines())
                .enumerate()
                .find(|(_, (a, b))| a != b);
            return Err(TestCaseError::fail(format!(
                "solver reports diverge at {diff:?}"
            )));
        }
    }

    /// Determinism under fuzzing: the same plan run twice (same solver)
    /// is bit-identical — fault handling introduces no hidden
    /// nondeterminism (hash-map iteration, allocation order, ...).
    #[test]
    fn random_fault_plans_are_run_to_run_deterministic(spec in scenario_strategy()) {
        let run = || {
            let mut obs = checker();
            run_scenario_observed_with_solver(&spec, SolverMode::Incremental, &mut obs)
                .map(|r| serde_json::to_string_pretty(&r).expect("serializes"))
        };
        match (run(), run()) {
            (Err(_), Err(_)) => prop_assume!(false),
            (a, b) => prop_assert_eq!(a.ok(), b.ok(), "re-run diverged"),
        }
    }
}

/// A fixed worst-case cocktail kept outside the random sweep so it is
/// exercised on every single test run: crash the destination during a
/// stall inside a degradation window, with a second migration on a
/// deadline.
#[test]
fn fixed_fault_cocktail_is_clean() {
    let spec = ScenarioSpec {
        name: Some("cocktail".into()),
        cluster: Some(ClusterConfig::small_test()),
        orchestrator: None,
        autonomic: None,
        resilience: None,
        // Shape the cocktail too: a biting cap, multifd, and
        // compression on top of the crash/stall/degrade pile-up.
        qos: Some(QosConfig {
            bandwidth_cap_mb: Some(30.0),
            streams: 4,
            compress_mem_ratio: 0.7,
            compress_storage_ratio: 0.8,
            compress_cpu_frac: 0.15,
        }),
        strategy: StrategyKind::Hybrid,
        grouped: false,
        vms: vec![
            VmSpec::new(
                0,
                WorkloadSpec::HotspotWrite {
                    offset: 0,
                    region_blocks: 48,
                    block: 256 * 1024,
                    count: 800,
                    theta: 0.8,
                    think_secs: 0.01,
                    seed: 3,
                },
            ),
            VmSpec::new(
                2,
                WorkloadSpec::SeqWrite {
                    offset: 0,
                    total: 24 * MIB,
                    block: MIB,
                    think_secs: 0.05,
                },
            ),
        ],
        migrations: vec![
            MigrationSpec {
                vm: 0,
                dest: 1,
                at_secs: 1.0,
                deadline_secs: None,
                adaptive: None,
            },
            MigrationSpec {
                vm: 1,
                dest: 3,
                at_secs: 1.5,
                deadline_secs: Some(0.8),
                adaptive: None,
            },
        ],
        requests: None,
        faults: Some(vec![
            FaultSpec {
                at_secs: 1.1,
                kind: FaultKind::LinkDegrade {
                    node: 1,
                    factor: 0.2,
                },
            },
            FaultSpec {
                at_secs: 1.4,
                kind: FaultKind::TransferStall { vm: 0, secs: 0.7 },
            },
            FaultSpec {
                at_secs: 1.9,
                kind: FaultKind::NodeCrash { node: 1 },
            },
            FaultSpec {
                at_secs: 2.5,
                kind: FaultKind::LinkRestore { node: 3 },
            },
        ]),
        cancellations: None,
        horizon_secs: 90.0,
    };
    let mut reports = Vec::new();
    for solver in [SolverMode::Incremental, SolverMode::Reference] {
        let mut obs = checker();
        let r = run_scenario_observed_with_solver(&spec, solver, &mut obs).expect("runs");
        obs.assert_clean("cocktail");
        reports.push(serde_json::to_string_pretty(&r).expect("serializes"));
    }
    assert_eq!(reports[0], reports[1], "cocktail reports diverge");
}

// --------------------------------------------------------------------
// Lint cross-validation: the static analyzer's error-level verdicts
// are claims about what the engine must do; hold them to it on the
// same random plans the fault fuzzer generates.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Soundness of the structural pass: whenever `lsm_analyze::lint`
    /// reports an `L000` error, `build_scenario` must reject the spec
    /// too — the linter never cries wolf about a spec that builds.
    #[test]
    fn lint_structural_errors_imply_build_failure(spec in scenario_strategy()) {
        let diags = lsm_analyze::lint(&spec);
        if diags.iter().any(|d| d.code == lsm_analyze::DiagCode::InvalidSpec) {
            prop_assert!(
                lsm_experiments::scenario::build_scenario(&spec).is_err(),
                "lint flagged L000 but the spec builds:\n{}",
                lsm_analyze::render(&diags)
            );
        }
    }

    /// Dynamic confirmation of `L003`: on a quiet plan (no faults, no
    /// cancellations, no retries — nothing else can interfere with the
    /// job), a migration the linter proves deadline-infeasible must
    /// never complete, and when it ran at all it must have died of
    /// exactly `DeadlineExceeded` (or been rejected outright, e.g. a
    /// second migration of a still-migrating VM).
    #[test]
    fn lint_deadline_verdicts_are_confirmed_by_the_engine(spec in scenario_strategy()) {
        let mut quiet = spec;
        quiet.resilience = None;
        quiet.faults = None;
        quiet.cancellations = None;
        let flagged: Vec<usize> = lsm_analyze::lint(&quiet)
            .iter()
            .filter(|d| d.code == lsm_analyze::DiagCode::DeadlineImpossible)
            .filter_map(|d| match d.span {
                lsm_analyze::Span::Migration(j) => Some(j),
                _ => None,
            })
            .collect();
        if flagged.is_empty() {
            return Ok(()); // nothing predicted; nothing to confirm
        }
        let Ok(report) = lsm_experiments::scenario::run_scenario(&quiet) else {
            prop_assume!(false); // invalid plan: rejected, skip
            unreachable!()
        };
        for j in flagged {
            let rec = &report.migrations[j];
            prop_assert!(
                !rec.completed,
                "lint proved migration {j} cannot meet its deadline, yet it completed"
            );
            prop_assert!(
                matches!(
                    rec.failure,
                    Some(lsm_core::FailureReason::DeadlineExceeded { .. })
                        | Some(lsm_core::FailureReason::Rejected { .. })
                ),
                "migration {j}: expected DeadlineExceeded, got {:?}",
                rec.failure
            );
        }
    }
}
