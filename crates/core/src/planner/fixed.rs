//! The trivial planner: what the engine did before the orchestration
//! layer existed, expressed as a [`Planner`].

use super::{PlanContext, Planner};
use crate::policy::StrategyKind;

/// Admits requests exactly as given: explicit migrations keep their
/// destination and strategy; intent-driven placements take the first
/// healthy node other than the VM's host (lowest index — deterministic,
/// load-blind). The historical `Engine::schedule_migration` behaviour
/// is this planner under an unlimited admission cap.
#[derive(Clone, Copy, Debug, Default)]
pub struct FixedPlanner;

impl Planner for FixedPlanner {
    fn name(&self) -> &'static str {
        "fixed"
    }

    fn place(&mut self, ctx: &PlanContext<'_>) -> Option<u32> {
        ctx.nodes
            .iter()
            .find(|n| !n.crashed && n.node != ctx.vm.host)
            .map(|n| n.node)
    }

    fn choose_strategy(&mut self, ctx: &PlanContext<'_>) -> StrategyKind {
        // Never second-guesses the configured strategy.
        ctx.vm.strategy
    }
}
